// Package traffic is the internet-scale open-loop scenario engine:
// deterministic, seed-driven traffic shapes — diurnal load curves with
// regional offsets, flash crowds, antagonist/noisy-neighbor multi-
// tenancy, connection churn, and an nginx-style request-fanout model —
// generating millions of simulated connections against a simulated
// kernel (single or sharded) or a simulated fleet.
//
// The engine is open-loop: arrival times come from the scenario clock,
// never from service completions, so overload compounds the way it does
// on a real front door instead of self-throttling. Every arrival passes
// through an overload.Controller before any task is spawned; shed
// requests cost no kernel events (which is what keeps million-connection
// flash peaks simulable) and retry with bounded backoff, all under the
// controller's conservation accounting.
//
// Determinism: each Driver owns a seeded ktime.Rand and touches only its
// own kernel shard, so a sharded drive is deterministic serial or
// parallel, and per-shard reports merge into the same totals either way
// (the bench fingerprints this).
package traffic

import (
	"math"
	"time"
)

// ShapeKind selects one adversarial traffic shape.
type ShapeKind uint8

const (
	// Flash is a flash crowd: the class's arrival rate multiplies by
	// Mult inside the window.
	Flash ShapeKind = iota
	// Antagonist is noisy-neighbor multi-tenancy: the antagonist class's
	// rate multiplies by Mult inside the window, crowding the victims.
	// Fairness is judged over the other classes' completions.
	Antagonist
	// Churn is a connection-churn storm: arrivals multiply by Mult and
	// every connection opened inside the window issues a single request
	// (open, one request, close — the pathological keep-alive-miss
	// pattern).
	Churn
)

func (k ShapeKind) String() string {
	switch k {
	case Flash:
		return "flash"
	case Antagonist:
		return "antagonist"
	case Churn:
		return "churn"
	}
	return "shape?"
}

// Shape is one traffic distortion window.
type Shape struct {
	Kind ShapeKind
	// Class is the index of the class the shape applies to; negative
	// means every class.
	Class int
	// At and Dur bound the window [At, At+Dur) in scenario time.
	At, Dur time.Duration
	// Mult is the arrival-rate multiplier inside the window.
	Mult float64
}

// Class is one request class of a scenario.
type Class struct {
	// Name labels the class in reports and task names.
	Name string
	// Policy is the scheduler class id requests spawn into.
	Policy int
	// Admission is the class index in the overload controller's config
	// this class offers through.
	Admission int
	// Weight is the class's share of baseline connection arrivals.
	Weight float64
	// Work is the mean per-request service demand (exp-distributed).
	Work time.Duration
	// Fanout is the nginx-style backend fan-out: a request with Fanout
	// > 1 spawns that many backend subrequests (splitting Work between
	// them) and completes when the last one exits.
	Fanout int
	// ReqPerConn is how many requests each connection issues (default
	// 1); Think is the gap between them.
	ReqPerConn int
	Think      time.Duration
}

// Region is one arrival region: a share of global traffic with a diurnal
// phase offset. In sharded rigs regions partition across shards.
type Region struct {
	Name string
	// Share is the region's fraction of global arrivals.
	Share float64
	// Offset shifts the region's diurnal phase (its local time of day).
	Offset time.Duration
}

// Scenario is one deterministic open-loop traffic plan.
type Scenario struct {
	// Seed drives every random draw (arrival jitter, service times).
	Seed uint64
	// Rate is the baseline global connection-arrival rate per second,
	// before diurnal and shape multipliers.
	Rate float64
	// Duration is how long arrivals are generated; the rig then drains.
	Duration time.Duration
	// Tick is the arrival batching quantum (default 100µs).
	Tick time.Duration
	// DiurnalPeriod is one simulated "day" (default: Duration, i.e. the
	// run sweeps one full curve); DiurnalAmp is the curve's amplitude in
	// [0,1) around the baseline (default 0.4, negative disables).
	DiurnalPeriod time.Duration
	DiurnalAmp    float64

	Classes []Class
	Regions []Region
	Shapes  []Shape
}

// WithDefaults returns the scenario with zero fields defaulted.
func (sc Scenario) WithDefaults() Scenario {
	if sc.Tick <= 0 {
		sc.Tick = 100 * time.Microsecond
	}
	if sc.DiurnalPeriod <= 0 {
		sc.DiurnalPeriod = sc.Duration
	}
	if sc.DiurnalAmp == 0 {
		sc.DiurnalAmp = 0.4
	}
	if len(sc.Regions) == 0 {
		sc.Regions = []Region{{Name: "global", Share: 1}}
	}
	cs := make([]Class, len(sc.Classes))
	copy(cs, sc.Classes)
	for i := range cs {
		if cs[i].ReqPerConn <= 0 {
			cs[i].ReqPerConn = 1
		}
		if cs[i].Fanout <= 0 {
			cs[i].Fanout = 1
		}
	}
	sc.Classes = cs
	return sc
}

// Factor is the arrival-rate multiplier for class ci at scenario time t
// in a region with the given diurnal offset: the diurnal curve times
// every shape window covering (ci, t).
func (sc *Scenario) Factor(ci int, t, offset time.Duration) float64 {
	f := 1.0
	if sc.DiurnalAmp > 0 && sc.DiurnalPeriod > 0 {
		phase := 2 * math.Pi * float64(t+offset) / float64(sc.DiurnalPeriod)
		f *= 1 + sc.DiurnalAmp*math.Sin(phase)
	}
	for i := range sc.Shapes {
		sh := &sc.Shapes[i]
		if (sh.Class == ci || sh.Class < 0) && t >= sh.At && t < sh.At+sh.Dur {
			f *= sh.Mult
		}
	}
	if f < 0 {
		f = 0
	}
	return f
}

// churnAt reports whether a churn window covers class ci at time t.
func (sc *Scenario) churnAt(ci int, t time.Duration) bool {
	for i := range sc.Shapes {
		sh := &sc.Shapes[i]
		if sh.Kind == Churn && (sh.Class == ci || sh.Class < 0) && t >= sh.At && t < sh.At+sh.Dur {
			return true
		}
	}
	return false
}

// inShape reports whether any window of the given kind covers class ci
// at time t (used to attribute admissions to flash windows).
func (sc *Scenario) inShape(kind ShapeKind, ci int, t time.Duration) bool {
	for i := range sc.Shapes {
		sh := &sc.Shapes[i]
		if sh.Kind == kind && (sh.Class == ci || sh.Class < 0) && t >= sh.At && t < sh.At+sh.Dur {
			return true
		}
	}
	return false
}

// antagonistActive reports whether any antagonist window covers time t
// (fairness is judged over arrivals inside these windows).
func (sc *Scenario) antagonistActive(t time.Duration) bool {
	for i := range sc.Shapes {
		sh := &sc.Shapes[i]
		if sh.Kind == Antagonist && t >= sh.At && t < sh.At+sh.Dur {
			return true
		}
	}
	return false
}

// AntagonistClass returns the class index targeted by the first
// antagonist shape, or -1 when the scenario has none. The fairness SLO
// excludes it from the victim set.
func (sc *Scenario) AntagonistClass() int {
	for i := range sc.Shapes {
		if sc.Shapes[i].Kind == Antagonist {
			return sc.Shapes[i].Class
		}
	}
	return -1
}

// OverloadEnd returns the end of the last overload window (flash or
// antagonist) — the epoch brownout-recovery time is measured from.
func (sc *Scenario) OverloadEnd() time.Duration {
	var end time.Duration
	for i := range sc.Shapes {
		sh := &sc.Shapes[i]
		if sh.Kind == Flash || sh.Kind == Antagonist {
			if e := sh.At + sh.Dur; e > end {
				end = e
			}
		}
	}
	return end
}
