package vpol

import (
	"testing"
	"time"

	"enoki/internal/kernel"
	"enoki/internal/metrics"
	"enoki/internal/sim"
	"enoki/internal/trace"
)

// TestVerifiedPickZeroAlloc is the verified tier's alloc ratchet: once the
// machine is warm, driving the full schedule path — enqueue hook, pick hook,
// ring pops, metrics, tracing — through the interpreter must not allocate.
// This is the property that makes the bytecode tier a fast lane rather than
// a cheaper-message tier.
func TestVerifiedPickZeroAlloc(t *testing.T) {
	eng := sim.New()
	k := kernel.New(eng, kernel.Machine8(), kernel.DefaultCosts())
	c, err := Load(k, policyVPol, FIFOProgram(), DefaultConfig())
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	k.RegisterClass(policyCFS, kernel.NewCFS(k))
	k.SetMetrics(metrics.NewSet(k.NumCPUs()))
	k.SetTracer(trace.New(1 << 16))

	// Endless ping-pong through the verified class, pinned to one CPU so
	// every cycle is enqueue → pick → switch.
	var x, y *kernel.Task
	mk := func(peer **kernel.Task) kernel.Behavior {
		wake := make([]*kernel.Task, 1)
		return kernel.BehaviorFunc(func(k *kernel.Kernel, t *kernel.Task) kernel.Action {
			wake[0] = *peer
			return kernel.Action{Run: 2 * time.Microsecond, Wake: wake, Op: kernel.OpBlock}
		})
	}
	x = k.Spawn("x", policyVPol, mk(&y), kernel.WithAffinity(kernel.SingleCPU(0)))
	y = k.Spawn("y", policyVPol, mk(&x), kernel.WithAffinity(kernel.SingleCPU(0)))
	_ = x

	k.RunFor(20 * time.Millisecond) // warm rings, free lists, timer wheel
	before := c.Stats()
	avg := testing.AllocsPerRun(200, func() { k.RunFor(200 * time.Microsecond) })
	if avg != 0 {
		t.Errorf("verified schedule path: %v allocs/op, want 0", avg)
	}
	after := c.Stats()
	if after.Picks <= before.Picks {
		t.Fatalf("interpreter did not run during the measured window: %+v -> %+v", before, after)
	}
}
