package enokic

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"enoki/internal/core"
	"enoki/internal/kernel"
	"enoki/internal/record"
	"enoki/internal/replay"
	"enoki/internal/sched/fifo"
	"enoki/internal/schedtest"
	"enoki/internal/sim"
)

// faultRig builds a kernel with the module under test at high priority and
// CFS as the fallback class, mirroring newRig but with a custom Config.
func faultRig(cfg Config, factory func(core.Env) core.Scheduler) (*kernel.Kernel, *Adapter) {
	eng := sim.New()
	k := kernel.New(eng, kernel.Machine8(), kernel.DefaultCosts())
	a := Load(k, policyEnoki, cfg, factory)
	k.RegisterClass(policyCFS, kernel.NewCFS(k))
	return k, a
}

// sleeper runs iters cycles of (run, sleep) then exits — a workload whose
// progress depends on wakeups being delivered.
func sleeper(iters int, run, sleep time.Duration) kernel.Behavior {
	n := 0
	return kernel.BehaviorFunc(func(k *kernel.Kernel, t *kernel.Task) kernel.Action {
		n++
		if n > iters {
			return kernel.Action{Op: kernel.OpExit}
		}
		return kernel.Action{Run: run, Op: kernel.OpSleep, SleepFor: sleep}
	})
}

func TestPanickingModuleKilledTasksSurvive(t *testing.T) {
	k, a := faultRig(DefaultConfig(), func(env core.Env) core.Scheduler {
		return &schedtest.Panicky{Scheduler: fifo.New(env, policyEnoki), PanicAfterPicks: 3}
	})
	done := 0
	for i := 0; i < 6; i++ {
		k.Spawn("w", policyEnoki, spin(5*time.Millisecond, time.Millisecond),
			kernel.WithExitObserver(func() { done++ }))
	}
	k.RunFor(200 * time.Millisecond)

	if !a.Killed() {
		t.Fatal("panicking module was not killed")
	}
	rep := a.Failure()
	if rep == nil {
		t.Fatal("no FailureReport after kill")
	}
	if rep.Fault.Cause != core.FaultPanic || rep.Fault.MsgKind != core.MsgPickNextTask {
		t.Fatalf("fault = %+v, want panic in pick_next_task", rep.Fault)
	}
	if rep.TasksMigrated == 0 {
		t.Fatalf("kill migrated no tasks: %+v", rep)
	}
	if done != 6 {
		t.Fatalf("only %d/6 tasks completed under CFS fallback", done)
	}
	if st := a.Stats(); st.Faults != 1 {
		t.Fatalf("Stats.Faults = %d, want 1", st.Faults)
	}
	// The dead policy id now resolves to the fallback class…
	if k.ClassByID(policyEnoki) != k.ClassByID(policyCFS) {
		t.Fatal("dead policy id does not resolve to the fallback class")
	}
	// …so late spawns into it still run.
	late := 0
	k.Spawn("late", policyEnoki, spin(time.Millisecond, time.Millisecond),
		kernel.WithExitObserver(func() { late++ }))
	k.RunFor(50 * time.Millisecond)
	if late != 1 {
		t.Fatal("spawn into the dead policy id did not complete under fallback")
	}
	if k.NumTasks() != 0 {
		t.Fatalf("leaked tasks: %d", k.NumTasks())
	}
}

func TestStallingModuleKilledByWatchdog(t *testing.T) {
	cfg := DefaultConfig()
	cfg.StarveWindow = 5 * time.Millisecond
	k, a := faultRig(cfg, func(env core.Env) core.Scheduler {
		return &schedtest.Staller{Scheduler: fifo.New(env, policyEnoki), StallAfterPicks: 2}
	})
	done := 0
	for i := 0; i < 4; i++ {
		k.Spawn("w", policyEnoki, spin(3*time.Millisecond, 500*time.Microsecond),
			kernel.WithExitObserver(func() { done++ }))
	}
	k.RunFor(100 * time.Millisecond)

	if !a.Killed() {
		t.Fatal("stalled module was not killed")
	}
	rep := a.Failure()
	if rep == nil || rep.Fault.Cause != core.FaultStarvation {
		t.Fatalf("fault = %+v, want starvation", rep)
	}
	if rep.Downtime < cfg.StarveWindow {
		t.Fatalf("downtime %v below the %v watchdog window", rep.Downtime, cfg.StarveWindow)
	}
	if done != 4 {
		t.Fatalf("only %d/4 tasks completed under CFS fallback", done)
	}
}

func TestForgingModuleKilledOnPntErrBudget(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PntErrBudget = 1
	k, a := faultRig(cfg, func(env core.Env) core.Scheduler {
		return &schedtest.Forger{Scheduler: fifo.New(env, policyEnoki), ForgeAfterPicks: 2}
	})
	done := 0
	for i := 0; i < 4; i++ {
		k.Spawn("w", policyEnoki, spin(3*time.Millisecond, 500*time.Microsecond),
			kernel.WithExitObserver(func() { done++ }))
	}
	k.RunFor(100 * time.Millisecond)

	if !a.Killed() {
		t.Fatal("token-forging module was not killed")
	}
	rep := a.Failure()
	if rep == nil || rep.Fault.Cause != core.FaultPickErrors {
		t.Fatalf("fault = %+v, want pick-errors", rep)
	}
	if st := a.Stats(); st.PntErrs == 0 {
		t.Fatalf("no pnt_errs counted before the kill: %+v", st)
	}
	if done != 4 {
		t.Fatalf("only %d/4 tasks completed under CFS fallback", done)
	}
}

func TestLeakingModuleKilledByWatchdog(t *testing.T) {
	cfg := DefaultConfig()
	cfg.StarveWindow = 5 * time.Millisecond
	k, a := faultRig(cfg, func(env core.Env) core.Scheduler {
		return &schedtest.Leaker{Scheduler: fifo.New(env, policyEnoki), DropEvery: 1}
	})
	done := 0
	for i := 0; i < 3; i++ {
		k.Spawn("s", policyEnoki, sleeper(20, 100*time.Microsecond, 100*time.Microsecond),
			kernel.WithExitObserver(func() { done++ }))
	}
	k.RunFor(200 * time.Millisecond)

	if !a.Killed() {
		t.Fatal("wakeup-leaking module was not killed")
	}
	if rep := a.Failure(); rep == nil || rep.Fault.Cause != core.FaultStarvation {
		t.Fatalf("fault = %+v, want starvation", rep)
	}
	if done != 3 {
		t.Fatalf("only %d/3 sleepers completed under CFS fallback", done)
	}
}

func TestQueueLyingModuleKilled(t *testing.T) {
	var hs *hintScheduler
	k, a := faultRig(DefaultConfig(), func(env core.Env) core.Scheduler {
		hs = &hintScheduler{fifo: fifo.New(env, policyEnoki)}
		return &schedtest.QueueLiar{Scheduler: hs}
	})
	uq := a.CreateHintQueue(8)
	if uq == nil {
		t.Fatal("queue registration failed")
	}
	uq.Close()
	k.RunFor(time.Millisecond) // let the deferred kill run

	if !a.Killed() {
		t.Fatal("queue-lying module was not killed")
	}
	if rep := a.Failure(); rep == nil || rep.Fault.Cause != core.FaultQueueLie {
		t.Fatalf("fault = %+v, want queue-lie", rep)
	}
	if len(a.queues) != 0 {
		t.Fatalf("queue table leaked %d entries past Close", len(a.queues))
	}
}

func TestUserQueueCloseCleansTables(t *testing.T) {
	var hs *hintScheduler
	k, a := newRig(t, func(env core.Env) core.Scheduler {
		hs = &hintScheduler{fifo: fifo.New(env, policyEnoki)}
		return hs
	})
	uq := a.CreateHintQueue(8)
	rev := a.CreateRevQueue(8)
	if uq == nil || rev == nil {
		t.Fatal("queue registration failed")
	}
	if len(a.queues) != 1 || len(a.revQueues) != 1 {
		t.Fatalf("tables = %d/%d entries, want 1/1", len(a.queues), len(a.revQueues))
	}
	uq.Close()
	a.CloseRevQueue(rev)
	k.RunFor(time.Millisecond)
	if len(a.queues) != 0 || len(a.revQueues) != 0 {
		t.Fatalf("Close leaked table entries: %d hint, %d rev", len(a.queues), len(a.revQueues))
	}
	if a.Killed() {
		t.Fatalf("honest module killed on Close: %+v", a.Failure())
	}
	// Registering again must not collide with stale state.
	if q2 := a.CreateHintQueue(8); q2 == nil || len(a.queues) != 1 {
		t.Fatal("re-registration after Close failed")
	}
}

// TestCloseDuringUpgradeWaitsForSwap pins the quiesce contract Close now
// honours: a close issued during the blackout is deferred and unregisters
// from the post-swap module.
func TestCloseDuringUpgradeWaitsForSwap(t *testing.T) {
	var first, second *hintScheduler
	mk := func(slot **hintScheduler) func(core.Env) core.Scheduler {
		return func(env core.Env) core.Scheduler {
			*slot = &hintScheduler{fifo: fifo.New(env, policyEnoki)}
			return *slot
		}
	}
	k, a := newRig(t, mk(&first))
	uq := a.CreateHintQueue(8)
	upgraded := false
	k.Engine().After(0, func() {
		a.Upgrade(mk(&second), func(UpgradeReport) { upgraded = true })
		uq.Close() // mid-blackout: must wait for the new module
	})
	k.RunFor(10 * time.Millisecond)
	if !upgraded {
		t.Fatal("upgrade never completed")
	}
	if first.queue == nil {
		t.Fatal("close ran against the old module during the blackout")
	}
	if len(a.queues) != 0 {
		t.Fatal("deferred close did not clean the framework table")
	}
	if a.Killed() {
		// The new module returns its own (nil) queue for the id; the
		// framework table still maps it to the original object. That is
		// a framework-visible mismatch only if the table wasn't cleaned
		// through the same deferred path — which is what this guards.
		t.Fatalf("deferred close tripped a fault: %+v", a.Failure())
	}
}

// TestConcurrentUpgradesQueue is the regression test for the "concurrent
// upgrades" panic: a second upgrade during an in-flight blackout must queue
// and run after the first completes.
func TestConcurrentUpgradesQueue(t *testing.T) {
	k, a := newRig(t, wfqFactory)
	for i := 0; i < 4; i++ {
		k.Spawn("w", policyEnoki, spin(10*time.Millisecond, 500*time.Microsecond))
	}
	var order []int
	k.Engine().After(0, func() {
		a.Upgrade(wfqFactory, func(UpgradeReport) { order = append(order, 1) })
		a.Upgrade(wfqFactory, func(UpgradeReport) { order = append(order, 2) }) // mid-blackout
	})
	k.RunFor(50 * time.Millisecond)
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("upgrade completion order = %v, want [1 2]", order)
	}
	if st := a.Stats(); st.Upgrades != 2 {
		t.Fatalf("Stats.Upgrades = %d, want 2", st.Upgrades)
	}
}

// TestPreemptedFlagRecorded pins the PutPrev satellite: involuntary
// preemptions reach the module (and the record log) with Preempted set,
// while yields stay on their own message kind.
func TestPreemptedFlagRecorded(t *testing.T) {
	eng := sim.New()
	k := kernel.New(eng, kernel.Machine8(), kernel.DefaultCosts())
	a := Load(k, policyEnoki, DefaultConfig(), wfqFactory)
	k.RegisterClass(policyCFS, kernel.NewCFS(k))
	var buf bytes.Buffer
	rec := record.New(k, &buf, policyCFS, record.DefaultCosts())
	a.SetRecorder(rec)
	// Two CPU-bound tasks on one core force tick preemptions.
	for i := 0; i < 2; i++ {
		k.Spawn("w", policyEnoki, spin(20*time.Millisecond, 10*time.Millisecond),
			kernel.WithAffinity(kernel.SingleCPU(0)))
	}
	k.RunFor(100 * time.Millisecond)
	rec.Close()
	entries, err := record.Load(&buf)
	if err != nil {
		t.Fatalf("loading record log: %v", err)
	}
	preempts := 0
	for _, e := range entries {
		if e.Msg == nil || e.Msg.Kind != core.MsgTaskPreempt {
			continue
		}
		preempts++
		if !e.Msg.Preempted {
			t.Fatalf("seq %d: task_preempt recorded with Preempted=false", e.Msg.Seq)
		}
	}
	if preempts == 0 {
		t.Fatal("workload produced no task_preempt messages")
	}
}

// recordedFaultLog runs the stalling-module scenario under record mode and
// returns the raw log bytes plus the adapter's failure report.
func recordedFaultLog() ([]byte, *FailureReport) {
	eng := sim.New()
	k := kernel.New(eng, kernel.Machine8(), kernel.DefaultCosts())
	cfg := DefaultConfig()
	cfg.StarveWindow = 2 * time.Millisecond
	a := Load(k, policyEnoki, cfg, func(env core.Env) core.Scheduler {
		// Lock creation order matters to replay: fifo's lock first, then
		// the gate — the replay factory below must match.
		inner := fifo.New(env, policyEnoki)
		return &schedtest.Staller{Scheduler: inner, Gate: env.NewMutex("staller-gate"), StallAfterPicks: 2}
	})
	k.RegisterClass(policyCFS, kernel.NewCFS(k))
	var buf bytes.Buffer
	rec := record.New(k, &buf, policyCFS, record.DefaultCosts())
	a.SetRecorder(rec)
	for i := 0; i < 4; i++ {
		k.Spawn("w", policyEnoki, spin(3*time.Millisecond, 500*time.Microsecond))
	}
	k.RunFor(50 * time.Millisecond)
	rec.Close()
	return buf.Bytes(), a.Failure()
}

// TestFailureReportInRecordLog asserts a module kill leaves a module_fault
// entry in the record log carrying the cause and migration count, and that
// the truncated log still replays cleanly against the same faulty module.
func TestFailureReportInRecordLog(t *testing.T) {
	log, rep := recordedFaultLog()
	if rep == nil {
		t.Fatal("module was not killed")
	}
	entries, err := record.Load(bytes.NewReader(log))
	if err != nil {
		t.Fatalf("loading record log: %v", err)
	}
	found := false
	for _, e := range entries {
		if e.Msg == nil || e.Msg.Kind != core.MsgModuleFault {
			continue
		}
		found = true
		if core.FaultCause(e.Msg.ErrCode) != rep.Fault.Cause {
			t.Errorf("logged cause %v, report says %v", core.FaultCause(e.Msg.ErrCode), rep.Fault.Cause)
		}
		if e.Msg.Count != rep.TasksMigrated {
			t.Errorf("logged %d migrated tasks, report says %d", e.Msg.Count, rep.TasksMigrated)
		}
	}
	if !found {
		t.Fatal("no module_fault entry in the record log")
	}

	rres, err := replay.Replay(bytes.NewReader(log), replay.Config{NumCPUs: 8},
		func(env core.Env) core.Scheduler {
			inner := fifo.New(env, policyEnoki)
			return &schedtest.Staller{Scheduler: inner, Gate: env.NewMutex("staller-gate"), StallAfterPicks: 2}
		})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if len(rres.Divergences) != 0 {
		t.Errorf("replay of fault log diverged: %v", rres.Divergences)
	}
}

// TestFaultLogByteIdenticalSerialParallel runs the fault scenario once
// serially and four times concurrently; module death must be as
// deterministic as normal operation (the kill path iterates tasks in pid
// order, never map order).
func TestFaultLogByteIdenticalSerialParallel(t *testing.T) {
	serial, rep := recordedFaultLog()
	if rep == nil {
		t.Fatal("module was not killed")
	}
	if len(serial) == 0 {
		t.Fatal("empty record log")
	}
	logs := make([][]byte, 4)
	var wg sync.WaitGroup
	for i := range logs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			logs[i], _ = recordedFaultLog()
		}(i)
	}
	wg.Wait()
	for i, log := range logs {
		if !bytes.Equal(serial, log) {
			t.Errorf("concurrent fault log %d differs from serial (%d vs %d bytes)", i, len(log), len(serial))
		}
	}
}
