package experiments

import (
	"bufio"

	"os"
	"path/filepath"
	"runtime"
	"strings"

	"enoki/internal/stats"
)

// Table2Row is one component's line count.
type Table2Row struct {
	Component string
	Files     int
	LOC       int
}

// Table2Result is this reproduction's analogue of Table 2: lines of code per
// Enoki component, measured from the source tree at run time.
type Table2Result struct {
	Rows  []Table2Row
	Total int
}

// Name implements the experiment naming convention.
func (r *Table2Result) Name() string { return "table2" }

func (r *Table2Result) String() string {
	t := stats.NewTable("Component", "Files", "LOC")
	for _, row := range r.Rows {
		t.Row(row.Component, row.Files, row.LOC)
	}
	t.Row("total", "", r.Total)
	return "Table 2 (analogue): lines of Go per component of this reproduction\n" +
		"(paper: Enoki-C 2411 C, scheduler libEnoki 962 Rust, other libEnoki 5870, record 95, replay 646;\n" +
		" schedulers: WFQ 646, Shinjuku 285, Locality 203, Arachne arbiter 579)\n" + t.String()
}

// table2Components maps paper components to this repo's packages.
var table2Components = []struct {
	name string
	dirs []string
}{
	{"Enoki-C (enokic)", []string{"internal/enokic"}},
	{"libEnoki (core)", []string{"internal/core"}},
	{"kernel substrate", []string{"internal/kernel", "internal/sim", "internal/rbtree", "internal/ringbuf", "internal/ktime"}},
	{"record", []string{"internal/record"}},
	{"replay", []string{"internal/replay"}},
	{"WFQ scheduler", []string{"internal/sched/wfq"}},
	{"Shinjuku scheduler", []string{"internal/sched/shinjuku"}},
	{"Locality scheduler", []string{"internal/sched/locality"}},
	{"Arachne arbiter", []string{"internal/sched/arbiter"}},
	{"FIFO scheduler", []string{"internal/sched/fifo"}},
	{"ghOSt baseline", []string{"internal/ghost"}},
	{"Arachne runtime", []string{"internal/arachne"}},
	{"workloads", []string{"internal/workload"}},
	{"experiments", []string{"internal/experiments"}},
}

// Table2 counts non-test Go lines per component by walking the source tree
// (located via runtime.Caller, so it works from any working directory in a
// source checkout).
func Table2(o Options) *Table2Result {
	_, thisFile, _, ok := runtime.Caller(0)
	if !ok {
		return &Table2Result{}
	}
	root := filepath.Dir(filepath.Dir(filepath.Dir(thisFile)))
	res := &Table2Result{}
	for _, comp := range table2Components {
		row := Table2Row{Component: comp.name}
		for _, dir := range comp.dirs {
			entries, err := os.ReadDir(filepath.Join(root, dir))
			if err != nil {
				continue
			}
			for _, e := range entries {
				name := e.Name()
				if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
					continue
				}
				n, err := countLines(filepath.Join(root, dir, name))
				if err != nil {
					continue
				}
				row.Files++
				row.LOC += n
			}
		}
		res.Rows = append(res.Rows, row)
		res.Total += row.LOC
	}
	return res
}

func countLines(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	n := 0
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) != "" {
			n++
		}
	}
	return n, sc.Err()
}
