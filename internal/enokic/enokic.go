// Package enokic is the Go analogue of Enoki-C: the component "compiled
// into the kernel" that interfaces directly with the core scheduling code
// and the kernel scheduling data structures (§3). It registers,
// deregisters, and upgrades scheduler modules; translates every scheduler-
// class callback into a per-function message for libEnoki's processing
// function; performs the kernel-state updates on the module's behalf; issues
// and validates Schedulable proofs; and owns the plumbing for hint queues
// and the record channel.
//
// The Adapter implements kernel.Class, so a loaded Enoki scheduler slots
// into the simulated kernel exactly where a sched_class does, and every
// crossing charges the calibrated per-invocation framework overhead the
// paper measures at 100-150 ns.
package enokic

import (
	"errors"
	"fmt"
	"time"

	"enoki/internal/core"
	"enoki/internal/kernel"
	"enoki/internal/ktime"
	"enoki/internal/metrics"
	"enoki/internal/sim"
	"enoki/internal/trace"
)

// Sentinel errors for load and upgrade failures, testable with errors.Is.
var (
	// ErrPolicyMismatch: the module's GetPolicy disagrees with the policy
	// it was loaded under — the module would receive messages addressed to
	// a class it does not believe it is.
	ErrPolicyMismatch = errors.New("enokic: module policy does not match load policy")
	// ErrDuplicatePolicy: the kernel already has a class registered under
	// the requested policy id.
	ErrDuplicatePolicy = errors.New("enokic: policy id already registered")
	// ErrModuleKilled: the operation targets a module the fault layer has
	// killed; there is nothing left to upgrade or call.
	ErrModuleKilled = errors.New("enokic: module was killed by fault isolation")
	// ErrNoPreviousVersion: Rollback was asked to restore a module
	// generation that does not exist — no UpgradeTo has committed on this
	// adapter, so there is nothing to roll back to.
	ErrNoPreviousVersion = errors.New("enokic: no previous module version to roll back to")
)

// InitialVersion names the module generation Load installs, before any
// UpgradeTo renames it.
const InitialVersion = "v0"

// Config tunes the framework's modelled costs.
type Config struct {
	// CallOverhead is the framework overhead per scheduler invocation
	// (message build + RW-lock + FFI crossing). The paper measures
	// 100-150 ns; the default is 110 ns.
	CallOverhead time.Duration
	// UpgradeBase is the fixed part of the live-upgrade blackout
	// (write-lock acquisition, pointer swap, prepare/init).
	UpgradeBase time.Duration
	// UpgradePerCPU models draining in-flight read-locked calls: each
	// CPU may be mid-call when the write lock is requested, so the
	// blackout grows with core count (1.5 µs on 8 cores → ~10 µs on 80).
	UpgradePerCPU time.Duration
	// RandSeed seeds the module's deterministic random stream.
	RandSeed uint64
	// FallbackPolicy is the class id tasks are re-homed to if the module
	// is killed by the fault layer (default 0, conventionally CFS). The
	// class must be registered before the first fault trips.
	FallbackPolicy int
	// StarveWindow is how long a CPU may hold queued module tasks while
	// every PickNext comes back empty before the starvation watchdog
	// kills the module. Zero selects the 50ms default; negative disables
	// the watchdog.
	StarveWindow time.Duration
	// PntErrBudget is how many rejected pick_next_task results
	// (stale/forged/wrong-CPU/consumed Schedulables) the module may
	// accumulate before being killed. Zero selects the 5000 default;
	// negative disables the budget.
	PntErrBudget int
	// UpgradeRollback makes live upgrades transactional: the old module's
	// state is snapshotted before transfer, and when the new module faults
	// during the blackout window (factory or init panic, policy lie, or a
	// panic while the deferred backlog flushes) the old module is restored
	// from the snapshot and keeps serving — the upgrade aborts like a
	// failed transaction instead of killing the whole class to the
	// fallback. DefaultConfig enables it; a zero Config leaves upgrade
	// faults fatal, matching the pre-transactional behaviour.
	UpgradeRollback bool
}

// DefaultConfig returns the calibrated framework costs.
func DefaultConfig() Config {
	return Config{
		CallOverhead:    110 * time.Nanosecond,
		UpgradeBase:     600 * time.Nanosecond,
		UpgradePerCPU:   115 * time.Nanosecond,
		RandSeed:        0x5eed,
		StarveWindow:    50 * time.Millisecond,
		PntErrBudget:    5000,
		UpgradeRollback: true,
	}
}

// Stats counts framework-level events, mostly scheduler mistakes the
// framework caught.
type Stats struct {
	Messages    uint64
	PntErrs     uint64
	BalanceErrs uint64
	Migrations  uint64
	Upgrades    uint64
	Deferred    uint64
	// XLLCMoves counts runnable migrations that left the source LLC
	// domain; XNodeMoves is the subset that also crossed sockets. Together
	// with Migrations they show how much of a module's balancing is
	// cache-hostile.
	XLLCMoves  uint64
	XNodeMoves uint64
	// HintsDelivered counts hint pushes that landed (ring accepted, or the
	// synchronous parse_hint path); HintsDropped counts pushes lost to ring
	// overflow. Delivered + dropped = attempts, so a workload can tell
	// "module ignored my hints" from "my hints never arrived".
	HintsDelivered uint64
	HintsDropped   uint64
	// Faults counts module kills (0 or 1 per adapter lifetime).
	Faults uint64
}

// taskInfo is Enoki-C's authoritative view of one task: which queue holds
// it and which Schedulable generation is valid. Validation against this
// table is what stops a buggy module from running a task on the wrong CPU.
type taskInfo struct {
	t        *kernel.Task
	gen      uint64
	queued   bool
	queuedOn int
	running  bool
	newSent  bool
	// moveInFlight marks the window between Dequeue(sleep=false) and the
	// Migrate hook during a runnable migration.
	moveInFlight bool
	// migrated marks that the following Enqueue belongs to a migration
	// whose migrate_task_rq message was already sent.
	migrated bool
}

// Adapter connects one Enoki scheduler module to the kernel.
type Adapter struct {
	k      *kernel.Kernel
	policy int
	cfg    Config
	sched  core.Scheduler
	env    *kernelEnv

	info    map[int]*taskInfo
	nqueued []int

	seq      uint64
	lockSeq  uint64
	recorder core.Recorder
	thread   int // kernel thread id of the in-flight call

	// Observability taps (observe.go). sink caches the TraceSink handed to
	// SafeDispatchTraced — a, when any tap is live, else nil.
	tracer *trace.Tracer
	met    *metrics.ClassMetrics
	sink   core.TraceSink

	upgrading       bool
	deferred        []*core.Message
	kickPending     []bool
	pendingUpgrades []pendingUpgrade

	// Version lineage (upgrade.go). version names the module generation
	// currently serving; factory rebuilds it. prevVersion/prevFactory
	// remember the generation a committed UpgradeTo replaced, which is what
	// Rollback re-upgrades to — the fleet rollout machinery drives both as
	// cluster actions.
	version     string
	factory     func(core.Env) core.Scheduler
	prevVersion string
	prevFactory func(core.Env) core.Scheduler

	// Fault-isolation state. killed flips once, on the first fault; every
	// crossing into the module checks it so a dead module is never called
	// again (not even by the rehome migration it triggers).
	killed   bool
	fault    core.ModuleFault
	faultLag time.Duration
	report   *FailureReport
	onFault  func(*FailureReport)
	fallback int

	// Starvation watchdog: wdFailing[cpu] is set while the CPU's last
	// pick attempt found queued tasks but got nothing runnable,
	// wdFailAt[cpu] timestamps the first such failure, and wdEvent is a
	// persistent timer armed only while some CPU is failing (so the
	// healthy hot path never touches the event queue).
	wdWindow  time.Duration
	pntBudget uint64
	wdFailing []bool
	wdFailAt  []ktime.Time
	wdEvent   *sim.Event
	wdArmed   bool

	// msgFree recycles Message structs: every crossing draws from it and
	// returns the message once the dispatch (and any reply read) completes,
	// so the message path allocates nothing in steady state. Deferred
	// messages return to the pool after the post-upgrade flush.
	msgFree []*core.Message

	queues    map[int]*core.HintQueue
	revQueues map[int]*core.RevQueue

	recordCost time.Duration

	stats Stats
}

var _ kernel.Class = (*Adapter)(nil)

// Load builds an adapter, constructs the module via factory (handing it the
// kernel environment), and registers it with the kernel under policy. It
// panics on a policy mismatch or duplicate registration; use TryLoad to get
// those as errors instead.
func Load(k *kernel.Kernel, policy int, cfg Config, factory func(core.Env) core.Scheduler) *Adapter {
	a, err := TryLoad(k, policy, cfg, factory)
	if err != nil {
		panic(fmt.Sprintf("enokic: %v", err))
	}
	return a
}

// TryLoad is Load with typed failure values: ErrDuplicatePolicy when the
// kernel already has a class under policy, and ErrPolicyMismatch (wrapped
// with both ids) when the constructed module's GetPolicy disagrees with the
// policy it is being loaded under. On error no class is registered and the
// partially built module is discarded.
func TryLoad(k *kernel.Kernel, policy int, cfg Config, factory func(core.Env) core.Scheduler) (*Adapter, error) {
	if k.ClassByID(policy) != nil {
		return nil, fmt.Errorf("%w: %d", ErrDuplicatePolicy, policy)
	}
	a := &Adapter{
		k:           k,
		policy:      policy,
		cfg:         cfg,
		info:        make(map[int]*taskInfo),
		nqueued:     make([]int, k.NumCPUs()),
		kickPending: make([]bool, k.NumCPUs()),
		queues:      make(map[int]*core.HintQueue),
		revQueues:   make(map[int]*core.RevQueue),
		thread:      -1,
		fallback:    cfg.FallbackPolicy,
		wdFailing:   make([]bool, k.NumCPUs()),
		wdFailAt:    make([]ktime.Time, k.NumCPUs()),
	}
	a.wdEvent = k.Engine().NewEvent(a.wdCheck)
	switch {
	case cfg.StarveWindow > 0:
		a.wdWindow = cfg.StarveWindow
	case cfg.StarveWindow == 0:
		a.wdWindow = 50 * time.Millisecond
	}
	switch {
	case cfg.PntErrBudget > 0:
		a.pntBudget = uint64(cfg.PntErrBudget)
	case cfg.PntErrBudget == 0:
		a.pntBudget = 5000
	}
	a.env = &kernelEnv{a: a, rand: ktime.NewRand(cfg.RandSeed)}
	a.version = InitialVersion
	a.factory = factory
	s := factory(a.env)
	if s.GetPolicy() != policy {
		return nil, fmt.Errorf("%w: module says %d, loaded under %d",
			ErrPolicyMismatch, s.GetPolicy(), policy)
	}
	a.sched = s
	k.RegisterClass(policy, a)
	return a, nil
}

// Scheduler returns the currently loaded module (changes across upgrades).
func (a *Adapter) Scheduler() core.Scheduler { return a.sched }

// Policy returns the adapter's policy id.
func (a *Adapter) Policy() int { return a.policy }

// Env returns the kernel environment handed to modules.
func (a *Adapter) Env() core.Env { return a.env }

// Stats returns a copy of the framework counters.
func (a *Adapter) Stats() Stats { return a.stats }

// SetRecorder installs (or removes, with nil) the record-mode sink. If the
// recorder reports a per-call cost, the framework charges it on every
// crossing — this is what makes record mode measurably slower (§5.8).
func (a *Adapter) SetRecorder(r core.Recorder) {
	a.recorder = r
	a.recordCost = 0
	if c, ok := r.(interface{ PerCallCost() time.Duration }); ok {
		a.recordCost = c.PerCallCost()
	}
}

// Kernel returns the kernel this adapter is loaded into.
func (a *Adapter) Kernel() *kernel.Kernel { return a.k }

// --- message plumbing ------------------------------------------------------

// getMsg returns a zeroed Message from the free list (its Allowed backing
// array is retained across reuses). Pair with putMsg once the dispatch and
// every reply read are done.
func (a *Adapter) getMsg() *core.Message {
	if n := len(a.msgFree); n > 0 {
		m := a.msgFree[n-1]
		a.msgFree[n-1] = nil
		a.msgFree = a.msgFree[:n-1]
		return m
	}
	return &core.Message{}
}

// putMsg resets m and returns it to the free list. The caller must have
// finished with every field — including reply refs — and the recorder must
// already have taken its deep snapshot (record.Recorder clones).
func (a *Adapter) putMsg(m *core.Message) {
	m.Reset()
	a.msgFree = append(a.msgFree, m)
}

// dispatch sends one message through libEnoki's processing function,
// recording it afterwards so the log contains the reply. Every crossing is
// panic-contained: a module panic surfaces as a ModuleFault and kills the
// module instead of unwinding into the scheduler core. A panicked (or
// dead-module) message is not recorded — it produced no reply, and the log
// instead carries the module_fault entry the kill emits. Callers reading
// reply fields from a guarded message see the zero values, which every
// reply path treats as "module declined".
func (a *Adapter) dispatch(m *core.Message) {
	if a.killed {
		return
	}
	if fault := a.deliver(m); fault != nil {
		a.trip(*fault, 0)
	}
}

// deliver is dispatch's bookkeeping core: it performs the crossing (seq
// stamp, panic containment, unregister completion, record) but hands a
// contained fault back to the caller instead of tripping the kill path. The
// upgrade commit flush uses this to roll the swap back when the new module
// faults; everything else goes through dispatch, where a fault is fatal.
// (finishUnregister can still trip internally on a queue lie — callers that
// must not kill check a.killed after each delivery.)
func (a *Adapter) deliver(m *core.Message) *core.ModuleFault {
	m.Seq = a.seq
	a.seq++
	m.Now = int64(a.k.Now())
	a.stats.Messages++
	prev := a.thread
	a.thread = m.Thread
	fault := core.SafeDispatchTraced(a.sched, m, a.sink)
	a.thread = prev
	if fault != nil {
		return fault
	}
	switch m.Kind {
	case core.MsgUnregisterQueue, core.MsgUnregisterRevQueue:
		a.finishUnregister(m)
	}
	if a.recorder != nil {
		a.recorder.RecordMessage(m)
	}
	return nil
}

// defer1 queues a notification for delivery after an in-flight upgrade.
func (a *Adapter) defer1(m *core.Message) {
	a.stats.Deferred++
	a.deferred = append(a.deferred, m)
}

// notify sends a reply-less message now, or defers it during an upgrade.
// Either way it owns the message: immediate sends recycle it here, deferred
// ones after the post-upgrade flush. A dead module gets nothing.
func (a *Adapter) notify(m *core.Message) {
	if a.killed {
		a.putMsg(m)
		return
	}
	if a.upgrading {
		a.defer1(m)
		return
	}
	a.dispatch(m)
	a.putMsg(m)
}

func (a *Adapter) issue(ti *taskInfo, cpu int) *core.Schedulable {
	ti.gen++
	return core.NewSchedulable(ti.t.PID(), cpu, ti.gen)
}

func (a *Adapter) markQueued(ti *taskInfo, cpu int) {
	ti.queued = true
	ti.queuedOn = cpu
	a.nqueued[cpu]++
}

func (a *Adapter) unmarkQueued(ti *taskInfo) {
	if ti.queued {
		a.nqueued[ti.queuedOn]--
		if a.nqueued[ti.queuedOn] == 0 {
			// Empty queue cannot starve; stop the CPU's clock.
			a.wdPickServed(ti.queuedOn)
		}
		ti.queued = false
	}
}

// --- kernel.Class implementation -------------------------------------------

// Name implements kernel.Class.
func (a *Adapter) Name() string { return fmt.Sprintf("enoki:%d", a.policy) }

// OverheadPerCall implements kernel.Class: the paper's per-invocation
// framework cost, plus record-mode overhead when a recorder is installed.
func (a *Adapter) OverheadPerCall() time.Duration { return a.cfg.CallOverhead + a.recordCost }

// CrossingTier implements kernel.CrossingTierer: the adapter is the full
// message-crossing module tier.
func (a *Adapter) CrossingTier() string { return "module" }

// TaskNew implements kernel.Class. The module's task_new message is sent at
// the first enqueue, when a Schedulable for a concrete run queue exists.
func (a *Adapter) TaskNew(t *kernel.Task) {
	a.info[t.PID()] = &taskInfo{t: t}
}

// TaskDead implements kernel.Class.
func (a *Adapter) TaskDead(t *kernel.Task) {
	ti := a.info[t.PID()]
	if ti == nil {
		return
	}
	a.unmarkQueued(ti)
	delete(a.info, t.PID())
	m := a.getMsg()
	m.Kind, m.Thread, m.PID = core.MsgTaskDead, t.CPU(), t.PID()
	a.notify(m)
}

// Detach implements kernel.Class: the task leaves for another class; the
// module returns its token through task_departed. Unlike notifications this
// needs a reply, so during an upgrade window it enters the module
// synchronously — the quiesce contract trusts setscheduler calls to be rare
// enough not to matter inside a ~10µs blackout (§3.2's "trusted to upgrade
// quickly").
func (a *Adapter) Detach(t *kernel.Task) {
	ti := a.info[t.PID()]
	if ti == nil {
		return
	}
	a.unmarkQueued(ti)
	delete(a.info, t.PID())
	m := a.getMsg()
	m.Kind, m.Thread, m.PID, m.CPU = core.MsgTaskDeparted, t.CPU(), t.PID(), t.CPU()
	a.dispatch(m)
	tok := m.TakeRetSched()
	a.putMsg(m)
	if tok != nil {
		tok.Consume()
	}
}

// Enqueue implements kernel.Class.
func (a *Adapter) Enqueue(cpu int, t *kernel.Task, wakeup bool) {
	ti := a.info[t.PID()]
	if ti == nil {
		return
	}
	if ti.migrated {
		// The migrate_task_rq message already covered this move.
		ti.migrated = false
		return
	}
	tok := a.issue(ti, cpu)
	a.markQueued(ti, cpu)
	m := a.getMsg()
	m.Thread, m.PID, m.CPU = cpu, t.PID(), cpu
	m.Runtime = t.SumExec()
	switch {
	case !ti.newSent:
		ti.newSent = true
		m.Kind = core.MsgTaskNew
		m.Runnable = true
		m.Allowed = t.Allowed().AppendTo(m.Allowed[:0])
		m.Prio = t.Nice()
		if t.Nice() != 0 {
			// Deliver the initial priority right after task_new.
			pm := a.getMsg()
			pm.Kind, pm.Thread = core.MsgTaskPrioChanged, cpu
			pm.PID, pm.Prio = t.PID(), t.Nice()
			defer a.notify(pm)
		}
	default:
		m.Kind = core.MsgTaskWakeup
		m.Deferrable = wakeup
		m.LastCPU = t.CPU()
		m.WakeCPU = cpu
	}
	m.AttachSched(tok)
	a.notify(m)
}

// Dequeue implements kernel.Class.
func (a *Adapter) Dequeue(cpu int, t *kernel.Task, sleep bool) {
	ti := a.info[t.PID()]
	if ti == nil {
		return
	}
	if ti.running {
		ti.running = false
	} else if ti.queued {
		a.unmarkQueued(ti)
		ti.moveInFlight = true
	}
	if sleep {
		ti.moveInFlight = false
		m := a.getMsg()
		m.Kind, m.Thread = core.MsgTaskBlocked, cpu
		m.PID, m.CPU, m.Runtime = t.PID(), cpu, t.SumExec()
		a.notify(m)
	}
}

// Migrate implements kernel.Class: for a runnable migration the module gets
// migrate_task_rq with fresh proof for the new CPU and must return the old
// token. Wake-time CPU changes are covered by task_wakeup instead.
func (a *Adapter) Migrate(t *kernel.Task, src, dst int) {
	ti := a.info[t.PID()]
	if ti == nil || !ti.moveInFlight {
		return
	}
	ti.moveInFlight = false
	ti.migrated = true
	a.stats.Migrations++
	switch a.k.Topo().Distance(src, dst) {
	case core.DistCrossNode:
		a.stats.XNodeMoves++
		a.stats.XLLCMoves++
	case core.DistSameNode:
		a.stats.XLLCMoves++
	}
	tok := a.issue(ti, dst)
	a.markQueued(ti, dst)
	m := a.getMsg()
	m.Kind, m.Thread = core.MsgMigrateTaskRQ, dst
	m.PID, m.NewCPU, m.Runtime = t.PID(), dst, t.SumExec()
	m.AttachSched(tok)
	a.dispatch(m)
	old := m.TakeRetSched()
	a.putMsg(m)
	if old != nil {
		old.Consume()
	}
}

// Yield implements kernel.Class.
func (a *Adapter) Yield(cpu int, t *kernel.Task) {
	a.requeueCurrent(core.MsgTaskYield, cpu, t, false)
}

// PutPrev implements kernel.Class: the kernel's preempted flag travels in
// the message, so modules can tell an involuntary preemption from a
// framework-initiated requeue.
func (a *Adapter) PutPrev(cpu int, t *kernel.Task, preempted bool) {
	a.requeueCurrent(core.MsgTaskPreempt, cpu, t, preempted)
}

func (a *Adapter) requeueCurrent(kind core.Kind, cpu int, t *kernel.Task, preempted bool) {
	ti := a.info[t.PID()]
	if ti == nil {
		return
	}
	ti.running = false
	tok := a.issue(ti, cpu)
	a.markQueued(ti, cpu)
	m := a.getMsg()
	m.Kind, m.Thread = kind, cpu
	m.PID, m.CPU, m.Runtime = t.PID(), cpu, t.SumExec()
	m.Preempted = preempted
	m.AttachSched(tok)
	a.notify(m)
}

// PickNext implements kernel.Class: ask the module, then validate its proof
// against the authoritative table before letting the kernel act (§3.1).
func (a *Adapter) PickNext(cpu int) *kernel.Task {
	if a.killed {
		return nil
	}
	if a.upgrading {
		a.kickAfterUpgrade(cpu)
		return nil
	}
	m := a.getMsg()
	m.Kind, m.Thread, m.CPU = core.MsgPickNextTask, cpu, cpu
	a.dispatch(m)
	tok := m.TakeRetSched()
	a.putMsg(m)
	if tok == nil {
		if a.nqueued[cpu] > 0 {
			// Queued tasks but nothing offered: a starvation candidate.
			a.wdPickFailed(cpu)
		}
		return nil
	}
	ti := a.info[tok.PID()]
	var perr core.PickError
	switch {
	case ti == nil || !ti.queued:
		perr = core.PickNotQueued
	case tok.Consumed():
		perr = core.PickConsumed
	case tok.Gen() != ti.gen:
		perr = core.PickStale
	case tok.CPU() != cpu || ti.queuedOn != cpu:
		perr = core.PickWrongCPU
	}
	if perr != 0 {
		a.stats.PntErrs++
		em := a.getMsg()
		em.Kind, em.Thread = core.MsgPntErr, cpu
		em.CPU, em.PID, em.ErrCode = cpu, tok.PID(), int(perr)
		em.AttachSched(tok)
		a.dispatch(em)
		a.putMsg(em)
		if a.pntBudget > 0 && a.stats.PntErrs >= a.pntBudget {
			a.trip(core.ModuleFault{
				Cause:   core.FaultPickErrors,
				MsgKind: core.MsgPickNextTask,
				CPU:     cpu,
			}, 0)
			return nil
		}
		if a.nqueued[cpu] > 0 {
			a.wdPickFailed(cpu)
		}
		return nil
	}
	tok.Consume()
	a.wdPickServed(cpu)
	a.unmarkQueued(ti)
	ti.running = true
	return ti.t
}

// Tick implements kernel.Class. Ticks during an upgrade window are dropped,
// not deferred: they carry no state.
func (a *Adapter) Tick(cpu int, t *kernel.Task) {
	if a.upgrading {
		return
	}
	m := a.getMsg()
	m.Kind, m.Thread, m.CPU = core.MsgTaskTick, cpu, cpu
	m.PID, m.Runtime = t.PID(), t.SumExec()
	a.dispatch(m)
	a.putMsg(m)
}

// SelectRQ implements kernel.Class.
func (a *Adapter) SelectRQ(t *kernel.Task, prevCPU int, wakeup bool) int {
	if a.killed || a.upgrading {
		return prevCPU
	}
	m := a.getMsg()
	m.Kind, m.Thread = core.MsgSelectTaskRQ, prevCPU
	m.PID, m.PrevCPU, m.Wakeup = t.PID(), prevCPU, wakeup
	a.dispatch(m)
	ret := m.RetCPU
	a.putMsg(m)
	if ret < 0 || ret >= a.k.NumCPUs() {
		return prevCPU
	}
	return ret
}

// CheckPreempt implements kernel.Class: Enoki modules request wakeup
// preemption themselves via Env.Resched from task_wakeup, so the kernel-side
// hook does nothing.
func (a *Adapter) CheckPreempt(cpu int, t *kernel.Task) {}

// Balance implements kernel.Class: ask the module which task to pull toward
// cpu, attempt the move, and report failures through balance_err.
func (a *Adapter) Balance(cpu int) {
	if a.upgrading {
		return
	}
	m := a.getMsg()
	m.Kind, m.Thread, m.CPU = core.MsgBalance, cpu, cpu
	a.dispatch(m)
	retOK, retPID := m.RetOK, m.RetPID
	a.putMsg(m)
	if !retOK {
		return
	}
	ti := a.info[int(retPID)]
	if ti == nil || !ti.queued || ti.queuedOn == cpu || !a.k.MoveTask(ti.t, cpu) {
		a.stats.BalanceErrs++
		em := a.getMsg()
		em.Kind, em.Thread = core.MsgBalanceErr, cpu
		em.CPU, em.BalancePID = cpu, retPID
		a.dispatch(em)
		a.putMsg(em)
	}
}

// PrioChanged implements kernel.Class.
func (a *Adapter) PrioChanged(t *kernel.Task) {
	if a.info[t.PID()] == nil {
		return
	}
	m := a.getMsg()
	m.Kind, m.Thread = core.MsgTaskPrioChanged, t.CPU()
	m.PID, m.Prio = t.PID(), t.Nice()
	a.notify(m)
}

// AffinityChanged implements kernel.Class.
func (a *Adapter) AffinityChanged(t *kernel.Task) {
	if a.info[t.PID()] == nil {
		return
	}
	m := a.getMsg()
	m.Kind, m.Thread, m.PID = core.MsgTaskAffinityChanged, t.CPU(), t.PID()
	m.Allowed = t.Allowed().AppendTo(m.Allowed[:0])
	a.notify(m)
}

// NRunnable implements kernel.Class from the authoritative table.
func (a *Adapter) NRunnable(cpu int) int { return a.nqueued[cpu] }
