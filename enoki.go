// Package enoki is the public API of the Enoki reproduction: a framework
// for high velocity development of (simulated) Linux kernel schedulers,
// after "Enoki: High Velocity Linux Kernel Scheduler Development"
// (EuroSys '24).
//
// A scheduler is a type implementing Scheduler (the EnokiScheduler trait,
// Table 1 of the paper), written only against this package. Load it into a
// simulated kernel and it schedules tasks exactly where a sched_class
// would:
//
//	eng := enoki.NewEngine()
//	k := enoki.NewKernel(eng, enoki.Machine8(), enoki.DefaultCosts())
//	ad := enoki.Load(k, myPolicyID, enoki.DefaultConfig(),
//	        func(env enoki.Env) enoki.Scheduler { return mysched.New(env) })
//	k.RegisterClass(0, enoki.NewCFS(k)) // CFS below it, as in the paper
//
// The framework provides the paper's headline features:
//
//   - Schedulable proofs: the framework validates every pick_next_task
//     return against its authoritative table and bounces bad ones through
//     pnt_err, so a buggy module cannot run a task on the wrong CPU.
//   - Live upgrade: Adapter.Upgrade quiesces the module behind a
//     write-locked boundary, transfers state via reregister_prepare/init,
//     and swaps the dispatch pointer with a µs-scale blackout.
//   - Bidirectional hints: Adapter.CreateHintQueue / CreateRevQueue carry
//     scheduler-defined messages between userspace and the module.
//   - Record and replay: record.New captures every message and lock
//     operation; replay.Replay runs the same module code at userspace and
//     validates its decisions.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured results.
package enoki

import (
	"time"

	"enoki/internal/core"
	"enoki/internal/enokic"
	"enoki/internal/kernel"
	"enoki/internal/ktime"
	"enoki/internal/sim"
)

// --- scheduler-facing API (libEnoki) ----------------------------------------

// Scheduler is the EnokiScheduler trait (Table 1): implement it to build a
// loadable scheduler.
type Scheduler = core.Scheduler

// BaseScheduler supplies default no-op implementations of the optional
// trait methods; embed it in your scheduler.
type BaseScheduler = core.BaseScheduler

// Schedulable is the proof-of-runnability token (§3.1).
type Schedulable = core.Schedulable

// SchedulableRef is the serialisable form of a Schedulable.
type SchedulableRef = core.SchedulableRef

// Env is the safe interface a module gets for kernel services (locks,
// timers, topology, time).
type Env = core.Env

// Locker is the lock handle Env.NewMutex returns.
type Locker = core.Locker

// PickError explains a rejected pick_next_task result.
type PickError = core.PickError

// Pick rejection causes (see PickError).
const (
	PickWrongCPU  = core.PickWrongCPU
	PickStale     = core.PickStale
	PickNotQueued = core.PickNotQueued
	PickConsumed  = core.PickConsumed
)

// TransferOut and TransferIn are the live-upgrade state capsules (§3.2).
type (
	TransferOut = core.TransferOut
	TransferIn  = core.TransferIn
)

// Hint and RevMessage are the user↔kernel communication payloads (§3.3).
type (
	Hint       = core.Hint
	RevMessage = core.RevMessage
)

// HintQueue and RevQueue are the boundary ring buffers.
type (
	HintQueue = core.HintQueue
	RevQueue  = core.RevQueue
)

// --- kernel substrate ---------------------------------------------------------

// Kernel is the simulated Linux scheduling core.
type Kernel = kernel.Kernel

// Task is the simulated task_struct.
type Task = kernel.Task

// TaskState is a task's lifecycle state.
type TaskState = kernel.State

// Task lifecycle states.
const (
	StateNew      = kernel.StateNew
	StateRunnable = kernel.StateRunnable
	StateRunning  = kernel.StateRunning
	StateBlocked  = kernel.StateBlocked
	StateDead     = kernel.StateDead
)

// Action and Behavior define workload task bodies.
type (
	Action   = kernel.Action
	Behavior = kernel.Behavior
)

// BehaviorFunc adapts a function to Behavior.
type BehaviorFunc = kernel.BehaviorFunc

// Segment-completion operations for Action.Op.
const (
	OpContinue = kernel.OpContinue
	OpBlock    = kernel.OpBlock
	OpSleep    = kernel.OpSleep
	OpYield    = kernel.OpYield
	OpExit     = kernel.OpExit
)

// Machine and Costs describe the simulated host.
type (
	Machine = kernel.Machine
	Costs   = kernel.Costs
)

// CPUMask is a set of allowed CPUs.
type CPUMask = kernel.CPUMask

// Time is a virtual-time instant.
type Time = ktime.Time

// Rand is the deterministic random generator workloads use.
type Rand = ktime.Rand

// NewRand creates a seeded deterministic random stream.
func NewRand(seed uint64) *Rand { return ktime.NewRand(seed) }

// Engine is the discrete-event executor everything runs on.
type Engine = sim.Engine

// NewEngine creates a fresh event engine.
func NewEngine() *Engine { return sim.New() }

// NewKernel builds a simulated kernel on eng.
func NewKernel(eng *Engine, m Machine, c Costs) *Kernel { return kernel.New(eng, m, c) }

// Machine8 is the paper's 8-core one-socket machine.
func Machine8() Machine { return kernel.Machine8() }

// Machine80 is the paper's 80-core two-socket machine.
func Machine80() Machine { return kernel.Machine80() }

// DefaultCosts is the calibrated cost table.
func DefaultCosts() Costs { return kernel.DefaultCosts() }

// CostsFor calibrates costs for a machine.
func CostsFor(m Machine) Costs { return kernel.CostsFor(m) }

// NewCFS builds the native CFS baseline class.
func NewCFS(k *Kernel) *kernel.CFS { return kernel.NewCFS(k) }

// NewRT builds the native SCHED_FIFO/SCHED_RR real-time class (rrSlice 0
// uses Linux's 100ms default).
func NewRT(k *Kernel, rrSlice time.Duration) *kernel.RT { return kernel.NewRT(k, rrSlice) }

// RTParams configures a task's real-time priority for the RT class.
type RTParams = kernel.RTParams

// Spawn options re-exported for workload construction.
var (
	WithAffinity     = kernel.WithAffinity
	WithNice         = kernel.WithNice
	WithWakeObserver = kernel.WithWakeObserver
	WithExitObserver = kernel.WithExitObserver
	WithUserData     = kernel.WithUserData
)

// AllCPUs and SingleCPU build affinity masks.
var (
	AllCPUs   = kernel.AllCPUs
	SingleCPU = kernel.SingleCPU
)

// --- framework (Enoki-C) -------------------------------------------------------

// Adapter connects a loaded scheduler module to the kernel: registration,
// message dispatch, Schedulable validation, hint queues, live upgrade.
type Adapter = enokic.Adapter

// Config tunes framework costs.
type Config = enokic.Config

// UpgradeReport describes a completed live upgrade.
type UpgradeReport = enokic.UpgradeReport

// UserQueue is the userspace handle to a registered hint queue.
type UserQueue = enokic.UserQueue

// DefaultConfig returns the calibrated framework costs.
func DefaultConfig() Config { return enokic.DefaultConfig() }

// Load constructs a scheduler module via factory and registers it with the
// kernel under the given policy number.
func Load(k *Kernel, policy int, cfg Config, factory func(Env) Scheduler) *Adapter {
	return enokic.Load(k, policy, cfg, factory)
}
