package kernel

import (
	"strings"
	"testing"
	"time"
)

func TestAccessorsAndSetScheduler(t *testing.T) {
	k, cfs := newTestKernel(Machine8())
	second := NewCFS(k)
	k.RegisterClass(1, second)

	if k.Engine() == nil || k.ClassByID(testPolicyCFS) != cfs || k.ClassByID(99) != nil {
		t.Fatal("kernel accessors broken")
	}
	if cfs.Name() != "CFS" {
		t.Fatal("class name")
	}

	marker := "payload"
	task := k.Spawn("acc", testPolicyCFS, spinFor(5*time.Millisecond, time.Millisecond),
		WithUserData(marker), WithAffinity(SingleCPU(3)))
	if task.PID() == 0 || task.Name() != "acc" || task.UserData != marker {
		t.Fatal("task accessors broken")
	}
	if !strings.Contains(task.String(), "acc") {
		t.Fatalf("task String = %q", task.String())
	}
	if got := task.Allowed().List(); len(got) != 1 || got[0] != 3 {
		t.Fatalf("List = %v", got)
	}
	if StateRunnable.String() != "runnable" || State(99).String() != "invalid" {
		t.Fatal("state strings")
	}

	k.RunFor(time.Millisecond)
	if k.CPUSwitches(3) == 0 {
		t.Fatal("no switches counted on cpu3")
	}

	// Move the (running) task to the second CFS instance and back.
	k.SetScheduler(task, 1)
	k.SetScheduler(task, 1) // same class: no-op
	k.RunFor(time.Millisecond)
	if task.State() == StateDead {
		t.Fatal("task died prematurely")
	}
	k.SetScheduler(task, testPolicyCFS)
	k.RunUntilIdle()
	if task.State() != StateDead {
		t.Fatalf("task did not finish after class moves: %v", task.State())
	}

	// Blocked-task class move.
	blocked := k.Spawn("blk", testPolicyCFS, &scriptBehavior{actions: []Action{
		{Run: time.Microsecond, Op: OpBlock},
		{Run: time.Microsecond, Op: OpExit},
	}})
	k.RunFor(time.Millisecond)
	if blocked.State() != StateBlocked {
		t.Fatalf("state = %v", blocked.State())
	}
	k.SetScheduler(blocked, 1)
	k.Wake(blocked)
	k.RunFor(time.Millisecond)
	if blocked.State() != StateDead {
		t.Fatalf("blocked move lost the task: %v", blocked.State())
	}

	// ArmResched re-arm path: second arm cancels the first.
	k.ArmResched(0, time.Millisecond)
	k.ArmResched(0, 2*time.Millisecond)
	k.RunFor(5 * time.Millisecond)

	if k.cpus[0].ID() != 0 {
		t.Fatal("CPU ID")
	}
}
