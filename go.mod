module enoki

go 1.22
