// Benchmarks regenerating every table and figure of the paper's evaluation
// (§5). Each bench runs the corresponding experiment harness (quick scale)
// and reports the headline quantities as custom metrics, so
//
//	go test -bench=. -benchmem
//
// prints a machine-readable rendition of the whole evaluation. DESIGN.md §3
// maps each bench to its modules; cmd/enokibench prints the human-readable
// tables at full scale.
package enoki_test

import (
	"strings"
	"testing"
	"time"

	"enoki/internal/experiments"
)

var quick = experiments.Options{Quick: true}

func us(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

// metric sanitises a label into a whitespace-free benchmark unit.
func metric(parts ...string) string {
	s := strings.Join(parts, "_")
	return strings.NewReplacer(" ", "", "-", "_").Replace(s)
}

func BenchmarkTable2_LinesOfCode(b *testing.B) {
	var total int
	for i := 0; i < b.N; i++ {
		total = experiments.Table2(quick).Total
	}
	b.ReportMetric(float64(total), "loc")
}

func BenchmarkTable3_PipeLatency(b *testing.B) {
	var r *experiments.Table3Result
	for i := 0; i < b.N; i++ {
		r = experiments.Table3(quick)
	}
	for _, row := range r.Rows {
		b.ReportMetric(us(row.OneCore), metric(row.Sched, "1core_µs"))
		b.ReportMetric(us(row.TwoCore), metric(row.Sched, "2core_µs"))
	}
}

func BenchmarkTable4_Schbench(b *testing.B) {
	var r *experiments.Table4Result
	for i := 0; i < b.N; i++ {
		r = experiments.Table4(quick)
	}
	for _, c := range r.TwoWorkers {
		b.ReportMetric(us(c.P99), metric(c.Sched, "2w_p99_µs"))
	}
	for _, c := range r.FortyWorkers {
		b.ReportMetric(us(c.P99), metric(c.Sched, "40w_p99_µs"))
	}
}

func BenchmarkTable5_Applications(b *testing.B) {
	var r *experiments.Table5Result
	for i := 0; i < b.N; i++ {
		r = experiments.Table5(quick)
	}
	b.ReportMetric(r.Geomean, "geomean_diff_pct")
	b.ReportMetric(r.MaxAbs, "max_diff_pct")
}

func BenchmarkTable6_LocalityHints(b *testing.B) {
	var r *experiments.Table6Result
	for i := 0; i < b.N; i++ {
		r = experiments.Table6(quick)
	}
	for _, row := range r.Rows {
		b.ReportMetric(us(row.P50), metric(row.Config, "p50_µs"))
	}
}

func BenchmarkFig2a_RocksDB(b *testing.B) {
	var r *experiments.Fig2Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig2(quick, false)
	}
	for _, s := range r.Series {
		mid := s.Points[len(s.Points)/2]
		b.ReportMetric(us(mid.P99), metric(s.Sched, "midload_p99_µs"))
	}
}

func BenchmarkFig2b_RocksDBBatch(b *testing.B) {
	var r *experiments.Fig2Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig2(quick, true)
	}
	for _, s := range r.Series {
		mid := s.Points[len(s.Points)/2]
		b.ReportMetric(us(mid.P99), metric(s.Sched, "midload_p99_µs"))
	}
}

func BenchmarkFig2c_BatchShare(b *testing.B) {
	var r *experiments.Fig2Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig2(quick, true)
	}
	for _, s := range r.Series {
		mid := s.Points[len(s.Points)/2]
		b.ReportMetric(mid.BatchCPUs, metric(s.Sched, "midload_batch_cpus"))
	}
}

func BenchmarkFig3_Memcached(b *testing.B) {
	var r *experiments.Fig3Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig3(quick)
	}
	for _, s := range r.Series {
		last := s.Points[len(s.Points)-1]
		b.ReportMetric(us(last.P99), metric(s.Config, "hiload_p99_µs"))
	}
}

func BenchmarkUpgrade_Blackout(b *testing.B) {
	var r *experiments.UpgradeResult
	for i := 0; i < b.N; i++ {
		r = experiments.Upgrade(quick)
	}
	b.ReportMetric(us(r.Rows[0].Blackout), "blackout_8core_µs")
	b.ReportMetric(us(r.Rows[1].Blackout), "blackout_80core_µs")
}

func BenchmarkRecordReplay(b *testing.B) {
	var r *experiments.RecordReplayResult
	for i := 0; i < b.N; i++ {
		r = experiments.RecordReplay(quick)
	}
	b.ReportMetric(r.RecordRatio, "record_slowdown_x")
	b.ReportMetric(float64(r.Divergences), "divergences")
}

func BenchmarkEquivalence(b *testing.B) {
	var r *experiments.EquivalenceResult
	for i := 0; i < b.N; i++ {
		r = experiments.Equivalence(quick)
	}
	b.ReportMetric(float64(len(r.CheckEquivalence())), "violations")
	b.ReportMetric(float64(r.OneCoreWFQ)/float64(r.SpreadWFQ), "colocated_slowdown_x")
}
