package conformance

import (
	"bytes"
	"fmt"
	"time"

	"enoki/internal/core"
	"enoki/internal/enokic"
	"enoki/internal/kernel"
	"enoki/internal/record"
	"enoki/internal/vpol"
)

// ShardedRig is one conformance machine partitioned per NUMA node: every
// shard carries its own instance of the case's class above its own CFS, all
// driven by one epoch-merge executor.
type ShardedRig struct {
	SK *kernel.ShardedKernel
	// Shards holds one sub-rig per node; Rig.K is the node's sub-kernel, so
	// the single-kernel helpers (StartChecker, Workload) apply per shard
	// unchanged.
	Shards []*Rig
}

// NewShardedRig builds the sharded machine for c on m: one sub-kernel per
// NUMA node, the case's module (when it has one) loaded above CFS on every
// shard.
func NewShardedRig(c Case, m kernel.Machine, cfg enokic.Config) *ShardedRig {
	sk := kernel.NewShardedKernel(m, kernel.CostsFor(m), 0)
	r := &ShardedRig{SK: sk}
	for i := 0; i < sk.NumShards(); i++ {
		k := sk.ShardKernel(i)
		sub := &Rig{K: k, Policy: PolicyCFS}
		if c.Verified != nil {
			vc, err := vpol.Load(k, PolicyVerified, c.Verified, vpol.Config{Fallback: PolicyCFS})
			if err != nil {
				panic(fmt.Sprintf("conformance: verified load: %v", err))
			}
			sub.Verified = vc
		}
		if c.NewModule != nil {
			sub.Adapter = enokic.Load(k, PolicyTest, cfg, func(env core.Env) core.Scheduler {
				return c.NewModule(env, k.NumCPUs())
			})
			sub.Policy = PolicyTest
		}
		k.RegisterClass(PolicyCFS, kernel.NewCFS(k))
		r.Shards = append(r.Shards, sub)
	}
	return r
}

// CrossTraffic wires deterministic cross-shard wake traffic into r: pingers
// per shard that block each cycle and are driven by the neighbouring shard
// through the executor's message protocol (the cross-socket IPI path). Each
// pinger receives exactly `cycles` cross-shard credits; a credit arriving
// while the pinger is blocked wakes it, and one arriving mid-cycle is banked
// and consumed by the block-time recheck (the futex-style "a wake raced the
// block" path), so no credit is ever wasted regardless of how slowly the
// class cycles the task. The returned function reports how many pingers have
// exited.
func (r *ShardedRig) CrossTraffic(pingersPerShard, cycles int, period time.Duration) func() int {
	sk := r.SK
	n := sk.NumShards()
	la := sk.Executor().Lookahead()
	// Exit observers fire on the owning shard's goroutine in parallel runs,
	// so completion counts are per-shard and only summed between runs.
	completed := make([]int, n)
	for i := 0; i < n; i++ {
		i := i
		sub := r.Shards[i]
		k := sub.K
		waker := (i + 1) % n
		wakerEng := sk.ShardKernel(waker).Engine()
		for p := 0; p < pingersPerShard; p++ {
			// pending banks credits that arrived while the task was not
			// blocked. It is owned by shard i: the delivery closure and the
			// recheck both execute in shard i's context.
			pending := 0
			cycle := 0
			recheck := func() bool {
				if pending > 0 {
					pending--
					return true
				}
				return false
			}
			t := k.Spawn(fmt.Sprintf("ping%d.%d", i, p), sub.Policy,
				kernel.BehaviorFunc(func(*kernel.Kernel, *kernel.Task) kernel.Action {
					cycle++
					if cycle > cycles {
						return kernel.Action{Op: kernel.OpExit}
					}
					return kernel.Action{Run: 40 * time.Microsecond, Op: kernel.OpBlock, Recheck: recheck}
				}),
				kernel.WithExitObserver(func() { completed[i]++ }))
			deliver := func() {
				if t.State() == kernel.StateBlocked {
					k.Wake(t)
				} else {
					pending++
				}
			}
			// The waker chain runs on the neighbour shard, submitting one
			// credit per period through the epoch-merge protocol.
			left := cycles
			var fire func()
			fire = func() {
				sk.Executor().Send(waker, i, wakerEng.Now().Add(la), deliver)
				if left--; left > 0 {
					wakerEng.Post(period, fire)
				}
			}
			wakerEng.Post(time.Duration(p+1)*10*time.Microsecond, fire)
		}
	}
	return func() int {
		total := 0
		for _, c := range completed {
			total += c
		}
		return total
	}
}

// ShardedRunResult is one RecordShardedRun outcome: the raw per-shard record
// logs (empty slices for module-less cases) and the completion counts the
// identity and conformance tests assert on.
type ShardedRunResult struct {
	Logs          [][]byte
	WorkloadDone  int
	WorkloadTasks int
	PingersDone   int
	Pingers       int
	CrossWakes    uint64
	MsgsDelivered uint64
	EventsFired   uint64
	CtxSwitches   uint64
	Violations    []Violation
}

// RecordShardedRun drives one fully seeded sharded workload for c on m:
// every shard runs a per-shard seeded Workload plus the cross-shard pinger
// traffic, with a record channel per shard (when the case has a module) and
// an invariant checker per shard. parallel selects the executor drive mode;
// serial and parallel runs of the same arguments must produce byte-identical
// Logs — that is the tentpole's core determinism claim.
func RecordShardedRun(c Case, m kernel.Machine, cfg enokic.Config, seed uint64,
	tasksPerShard int, budget time.Duration, parallel bool) ShardedRunResult {
	r := NewShardedRig(c, m, cfg)
	defer r.SK.Close()
	r.SK.SetParallel(parallel)

	n := r.SK.NumShards()
	bufs := make([]*bytes.Buffer, n)
	recs := make([]*record.Recorder, n)
	checkers := make([]*Checker, n)
	dones := make([]func() int, n)
	for i := 0; i < n; i++ {
		sub := r.Shards[i]
		if sub.Adapter != nil {
			bufs[i] = &bytes.Buffer{}
			recs[i] = record.New(sub.K, bufs[i], PolicyCFS, record.DefaultCosts())
			sub.Adapter.SetRecorder(recs[i])
		}
		w := Workload{Seed: seed + uint64(i)*0x9e37, Tasks: tasksPerShard, Churn: true}
		dones[i] = w.Spawn(sub)
		checkers[i] = StartChecker(sub, 500*time.Microsecond)
	}
	const pingers, cycles = 3, 12
	pingDone := r.CrossTraffic(pingers, cycles, 200*time.Microsecond)

	r.SK.RunFor(budget)

	res := ShardedRunResult{
		Logs:          make([][]byte, n),
		WorkloadTasks: n * tasksPerShard,
		Pingers:       n * pingers,
		PingersDone:   pingDone(),
		CrossWakes:    r.SK.CrossWakes(),
		MsgsDelivered: r.SK.Executor().MsgsDelivered(),
		EventsFired:   r.SK.EventsFired(),
		CtxSwitches:   r.SK.CtxSwitches(),
	}
	for i := 0; i < n; i++ {
		res.WorkloadDone += dones[i]()
		checkers[i].Stop()
		res.Violations = append(res.Violations, checkers[i].Violations...)
		if recs[i] != nil {
			recs[i].Close()
			res.Logs[i] = bufs[i].Bytes()
		}
	}
	return res
}
