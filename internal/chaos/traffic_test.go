package chaos

import (
	"errors"
	"strings"
	"testing"
)

// trafficSpec is a pinned healthy-looking spec used by the fuzz corpus and
// the parse tests.
const trafficSpec = "t1:shinjuku:2a:3"

func TestParseTrafficSpecRoundTrip(t *testing.T) {
	s, err := ParseTrafficSpec(trafficSpec)
	if err != nil {
		t.Fatal(err)
	}
	if s.Spec() != trafficSpec {
		t.Fatalf("round-trip: %q != %q", s.Spec(), trafficSpec)
	}
	if len(s.Events) < 2 {
		t.Fatalf("generated only %d events", len(s.Events))
	}
	first := s.Events[0].Plane
	if first != PlaneTrafficFlash && first != PlaneTrafficAntag && first != PlaneTrafficChurn {
		t.Fatalf("first event %v is not a traffic shape", first)
	}
}

func TestParseTrafficSpecTypedErrors(t *testing.T) {
	for _, spec := range []string{
		"v1:shinjuku:2a:3",      // wrong prefix
		"t1:shinjuku:2a",        // truncated
		"t1::2a:3",              // empty class
		"t1:nosuch:2a:3",        // unknown class
		"t1:shinjuku:zz:3",      // bad seed
		"t1:shinjuku:2a:zz",     // bad mask
		"t1:shinjuku:2a:ffffff", // mask beyond events
	} {
		_, err := ParseTrafficSpec(spec)
		if err == nil {
			t.Fatalf("spec %q parsed", spec)
		}
		var se *SpecError
		if !errors.As(err, &se) {
			t.Fatalf("spec %q: error %v is not a *SpecError", spec, err)
		}
	}
}

func TestGenerateTrafficPure(t *testing.T) {
	a := GenerateTraffic(99, "shinjuku")
	b := GenerateTraffic(99, "shinjuku")
	if a.Spec() != b.Spec() || len(a.Events) != len(b.Events) {
		t.Fatal("GenerateTraffic is not pure")
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs: %v vs %v", i, a.Events[i], b.Events[i])
		}
	}
}

// TestTrafficCampaignSmoke is the CI campaign: 30 seeded traffic × fault
// schedules across every class must uphold every invariant.
func TestTrafficCampaignSmoke(t *testing.T) {
	res := TrafficCampaign(TrafficCampaignConfig{Runs: 30, Seed: 1})
	if !res.OK() {
		f := res.Failures[0]
		t.Fatalf("campaign found %d failures; first: %v (replay: %s)",
			len(res.Failures), f.Result.Violations, f.Replay)
	}
	if res.Runs != 30 {
		t.Fatalf("ran %d of 30", res.Runs)
	}
}

// TestTrafficLeakShedCaughtAndMinimized pins the seeded overload bug: with
// LeakShed planted, a flash-crowd schedule breaks conservation, the oracle
// reports it, ddmin shrinks the schedule, and the shrunk spec still
// reproduces — the full find→shrink→replay loop on the traffic plane.
func TestTrafficLeakShedCaughtAndMinimized(t *testing.T) {
	rc := TrafficRunConfig{LeakShed: true}
	res := TrafficCampaign(TrafficCampaignConfig{
		Runs: 12, Seed: 1, MaxFailures: 1, Run: rc,
		Classes: []string{"shinjuku"},
	})
	if res.OK() {
		t.Fatal("LeakShed campaign found no conservation break")
	}
	f := res.Failures[0]
	found := false
	for _, v := range f.Result.Violations {
		if strings.Contains(v, "conservation") {
			found = true
		}
	}
	if !found {
		t.Fatalf("failure is not a conservation break: %v", f.Result.Violations)
	}
	if f.Minimized.EnabledCount() > f.Result.Schedule.EnabledCount() {
		t.Fatal("ddmin grew the schedule")
	}
	// The minimized spec replays to the same failure.
	s, err := ParseTrafficSpec(f.Minimized.Spec())
	if err != nil {
		t.Fatalf("minimized spec does not parse: %v", err)
	}
	s.Mask = f.Minimized.Mask
	again := RunTraffic(s, rc)
	if !again.Failed() {
		t.Fatalf("replay of %s passed", f.Replay)
	}
	// Without the planted bug the same schedule is clean: the failure is
	// the seeded bug, not the schedule.
	clean := RunTraffic(f.Minimized, TrafficRunConfig{})
	if clean.Failed() {
		t.Fatalf("schedule fails even without LeakShed: %v", clean.Violations)
	}
}

// TestRunTrafficDeterministic pins that a run is a pure function of its
// schedule: same spec, same totals, fingerprint included.
func TestRunTrafficDeterministic(t *testing.T) {
	s := GenerateTraffic(7, "shinjuku")
	a := RunTraffic(s, TrafficRunConfig{})
	b := RunTraffic(s, TrafficRunConfig{})
	if a.Report.Fingerprint() != b.Report.Fingerprint() {
		t.Fatalf("fingerprints differ: %x vs %x", a.Report.Fingerprint(), b.Report.Fingerprint())
	}
	if len(a.Violations) != 0 {
		t.Fatalf("violations: %v", a.Violations)
	}
}
