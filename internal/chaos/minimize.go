package chaos

import (
	"fmt"

	"enoki/internal/ktime"
)

// Minimize shrinks a failing schedule to a minimal reproducer: a greedy
// ddmin over the event mask that repeatedly re-runs the schedule with one
// more event disabled and keeps any subset that still fails the oracle,
// until no single event can be removed. Because a run is a pure function of
// (schedule, config), the result is deterministic and the surviving mask —
// not a transcript — is the whole reproducer.
//
// Minimize accepts any failure as "the" failure (classic ddmin); a shrink
// that trades one violation for another still shrinks the search space a
// human has to read.
func Minimize(s Schedule, rc RunConfig) (Schedule, Result) {
	res := Run(s, rc)
	if !res.Failed() {
		return s, res
	}
	for changed := true; changed; {
		changed = false
		for i := range s.Events {
			if !s.EnabledAt(i) || s.EnabledCount() == 1 {
				continue
			}
			trial := s
			trial.Mask &^= 1 << uint(i)
			if tr := Run(trial, rc); tr.Failed() {
				s, res = trial, tr
				changed = true
			}
		}
	}
	return s, res
}

// ReplayCommand renders the one-liner that reproduces a failing schedule
// with the enoki-chaos CLI.
func ReplayCommand(s Schedule, rc RunConfig) string {
	cmd := fmt.Sprintf("enoki-chaos -replay %s", s.Spec())
	if rc.NoRollback {
		cmd += " -norollback"
	}
	if rc.VerifiedTier {
		cmd += " -verified"
	}
	return cmd
}

// CampaignConfig drives a multi-run chaos campaign.
type CampaignConfig struct {
	// Runs is how many seeded schedules to execute (default 100).
	Runs int
	// Seed roots the campaign; every run's schedule seed derives from it.
	Seed uint64
	// Classes restricts the classes exercised (default: all of them,
	// round-robin).
	Classes []string
	// MaxFailures stops the campaign after minimizing this many distinct
	// failing runs (default 3): minimization re-runs schedules, so an
	// everything-is-broken configuration should fail fast, not grind.
	MaxFailures int
	// Run tunes the individual runs (rollback, budgets, record mode).
	Run RunConfig
	// Progress, when set, receives one line per completed run.
	Progress func(string)
}

// Failure is one failing campaign run, minimized.
type Failure struct {
	// Result is the original failing run.
	Result Result
	// Minimized is the shrunk schedule and its (still failing) run.
	Minimized Schedule
	MinResult Result
	// Replay is the one-line reproducer command.
	Replay string
}

// CampaignResult summarises a campaign.
type CampaignResult struct {
	Runs     int
	Failures []Failure
}

// OK reports a clean campaign.
func (c *CampaignResult) OK() bool { return len(c.Failures) == 0 }

// Campaign runs cfg.Runs seeded fault schedules round-robin across the
// target classes, minimizing every failure it finds. The campaign itself is
// deterministic: the master seed fixes each run's class and schedule, so a
// campaign that found a bug is as replayable as any single run.
func Campaign(cfg CampaignConfig) CampaignResult {
	if cfg.Runs == 0 {
		cfg.Runs = 100
	}
	if cfg.MaxFailures == 0 {
		cfg.MaxFailures = 3
	}
	classes := cfg.Classes
	if len(classes) == 0 {
		classes = ClassNames()
	}
	master := ktime.NewRand(cfg.Seed)
	out := CampaignResult{}
	for i := 0; i < cfg.Runs; i++ {
		class := classes[i%len(classes)]
		sch := Generate(master.Uint64(), class)
		res := Run(sch, cfg.Run)
		out.Runs++
		if cfg.Progress != nil {
			status := "ok"
			if res.Failed() {
				status = fmt.Sprintf("FAIL (%d violations)", len(res.Violations))
			}
			cfg.Progress(fmt.Sprintf("run %3d %-10s %-22s %s", i, class, sch.Spec(), status))
		}
		if !res.Failed() {
			continue
		}
		min, minRes := Minimize(sch, cfg.Run)
		out.Failures = append(out.Failures, Failure{
			Result:    res,
			Minimized: min,
			MinResult: minRes,
			Replay:    ReplayCommand(min, cfg.Run),
		})
		if len(out.Failures) >= cfg.MaxFailures {
			break
		}
	}
	return out
}
