package experiments

import "sync"

// parDo runs fn(i) for every i in [0, n), fanning the calls across up to
// o.Parallel worker goroutines (0 or 1 means serial). Experiment harnesses
// use it to run independent cells — one scheduler kind at one load point —
// concurrently: each cell builds its own Rig, and therefore its own
// sim.Engine, so cells share no mutable state and per-cell determinism is
// preserved by construction. Results must land in index-addressed slots so
// the rendered tables never depend on goroutine scheduling.
func parDo(o Options, n int, fn func(i int)) {
	workers := o.Parallel
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
