// The interpreter: a verified Program mounted as a native kernel.Class. Every
// hook runs the bytecode in place — no message build, no dispatch, no module
// goroutine — with fixed-size machine state on the stack, so the scheduling
// path stays allocation-free. Runtime traps (division by zero, fuel
// exhaustion, enqueue-contract violations) take the same road module panics
// do: the class is marked killed, its tasks are rehomed to the fallback
// policy, and a FailureReport records what happened.
package vpol

import (
	"fmt"
	"time"

	"enoki/internal/kernel"
	"enoki/internal/ktime"
	"enoki/internal/trace"
)

// Trap is a runtime fault raised by the interpreter. The verifier makes most
// of them unreachable for verified programs; they stay armed as defense in
// depth, mirroring SafeDispatch's contain-then-kill stance.
type Trap uint8

const (
	TrapNone Trap = iota
	// TrapDivZero: OpDiv/OpMod with a zero divisor.
	TrapDivZero
	// TrapFuel: the hook ran past its verified worst-case step count.
	TrapFuel
	// TrapLoopDepth: the runtime loop stack overflowed MaxLoopDepth.
	TrapLoopDepth
	// TrapNoEnqueue: the enqueue hook returned without queueing its task.
	TrapNoEnqueue
	// TrapDoubleEnqueue: the enqueue hook queued its task twice.
	TrapDoubleEnqueue
)

func (t Trap) String() string {
	switch t {
	case TrapNone:
		return "none"
	case TrapDivZero:
		return "div-zero"
	case TrapFuel:
		return "fuel-exhausted"
	case TrapLoopDepth:
		return "loop-depth"
	case TrapNoEnqueue:
		return "no-enqueue"
	case TrapDoubleEnqueue:
		return "double-enqueue"
	}
	return "unknown"
}

// FailureReport records a verified class's death, the analogue of
// enokic.FailureReport for the bytecode tier.
type FailureReport struct {
	// Trap is what the interpreter hit; Hook and PC locate it.
	Trap Trap
	Hook string
	PC   int
	// CPU is the CPU the faulting hook ran for.
	CPU int
	// At is the virtual time of the kill.
	At ktime.Time
	// TasksRehomed counts tasks moved to the fallback policy.
	TasksRehomed int
}

// Stats counts interpreter activity for observability and tests.
type Stats struct {
	// Execs counts hook invocations that ran bytecode; Steps the
	// instructions they executed.
	Execs uint64
	Steps uint64
	// Enqueues counts tasks queued, Picks successful picks, EmptyPicks pick
	// hooks that found nothing.
	Enqueues   uint64
	Picks      uint64
	EmptyPicks uint64
}

// Config tunes a verified class.
type Config struct {
	// Overhead is the modeled cost charged per hook invocation — the
	// verified tier's (much smaller) analogue of enokic's CallOverhead.
	Overhead time.Duration
	// Fallback is the policy tasks are rehomed to when the class traps.
	Fallback int
	// QueueCap is the initial per-queue ring capacity; rings grow (on the
	// enqueue side only) if a workload outruns it.
	QueueCap int
}

// DefaultConfig mirrors enokic.DefaultConfig for the verified tier: ~15 ns
// per hook (a bounds-checked interpreter step loop, no crossing) and CFS at
// policy 0 as the fallback.
func DefaultConfig() Config {
	return Config{Overhead: 15 * time.Nanosecond, Fallback: 0, QueueCap: 64}
}

// ventry is the class-private per-task state, pooled on a free list so
// TaskNew/TaskDead stay allocation-free in steady state. seq invalidates
// ring slots lazily: a slot holds the seq at push time, and any dequeue
// bumps the entry's seq, so stale slots are skipped (and compacted) at pop.
type ventry struct {
	t      *kernel.Task
	seq    uint32
	queued bool
	kind   uint8 // QShared or QLocal
	qidx   uint8
	qcpu   int32 // CPU the enqueue was attributed to
	next   *ventry
}

// qslot is one ring cell.
type qslot struct {
	t   *kernel.Task
	seq uint32
}

// ring is a growable circular buffer with lazy deletion.
type ring struct {
	buf  []qslot
	head int
	tail int
	live int
}

func (r *ring) size() int {
	n := r.tail - r.head
	if n < 0 {
		n += len(r.buf)
	}
	return n
}

func (r *ring) push(t *kernel.Task, seq uint32) {
	if r.size()+1 >= len(r.buf) {
		r.grow()
	}
	r.buf[r.tail] = qslot{t: t, seq: seq}
	r.tail++
	if r.tail == len(r.buf) {
		r.tail = 0
	}
	r.live++
}

func (r *ring) grow() {
	nb := make([]qslot, 2*len(r.buf))
	n := r.size()
	for i := 0; i < n; i++ {
		nb[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	r.buf = nb
	r.head, r.tail = 0, n
}

func (r *ring) reset() {
	for i := range r.buf {
		r.buf[i] = qslot{}
	}
	r.head, r.tail, r.live = 0, 0, 0
}

// Class is a verified Program attached to a kernel as a scheduler class.
type Class struct {
	k      *kernel.Kernel
	policy int
	prog   *Program
	cfg    Config

	shared []ring // [SharedQueues]
	local  []ring // [ncpus * LocalQueues], cpu-major
	nq     []int  // runnable count attributed per CPU

	pickedAt []time.Duration // SumExec at pick, per CPU, for slice preemption

	free *ventry

	stats   Stats
	killed  bool
	report  *FailureReport
	onFault func(*FailureReport)

	// pending trap details between trip() and the posted kill().
	pTrap Trap
	pHook string
	pPC   int
	pCPU  int
}

var _ kernel.Class = (*Class)(nil)

// Load verifies prog and registers it with k as policy. The kernel calls the
// interpreter directly from its scheduling path — this is the whole point of
// the tier: no enokic crossing. Fails if verification fails or the policy id
// is taken.
func Load(k *kernel.Kernel, policy int, prog *Program, cfg Config) (*Class, error) {
	if err := Verify(prog); err != nil {
		return nil, err
	}
	if k.ClassByID(policy) != nil {
		return nil, fmt.Errorf("vpol: policy %d already registered", policy)
	}
	if cfg.Overhead <= 0 {
		cfg.Overhead = DefaultConfig().Overhead
	}
	if cfg.QueueCap < 2 {
		cfg.QueueCap = DefaultConfig().QueueCap
	}
	ncpus := k.NumCPUs()
	c := &Class{
		k:        k,
		policy:   policy,
		prog:     prog,
		cfg:      cfg,
		shared:   make([]ring, prog.SharedQueues),
		local:    make([]ring, ncpus*prog.LocalQueues),
		nq:       make([]int, ncpus),
		pickedAt: make([]time.Duration, ncpus),
	}
	for i := range c.shared {
		c.shared[i].buf = make([]qslot, cfg.QueueCap)
	}
	for i := range c.local {
		c.local[i].buf = make([]qslot, cfg.QueueCap)
	}
	k.RegisterClass(policy, c)
	return c, nil
}

// Name identifies the class; the vpol: prefix marks the tier in logs.
func (c *Class) Name() string { return fmt.Sprintf("vpol:%d", c.policy) }

// OverheadPerCall is the modeled per-hook cost (Config.Overhead).
func (c *Class) OverheadPerCall() time.Duration { return c.cfg.Overhead }

// CrossingTier tags the class for the observability layer's tier dimension.
func (c *Class) CrossingTier() string { return "verified" }

// Policy returns the class's policy id.
func (c *Class) Policy() int { return c.policy }

// Program returns the loaded program.
func (c *Class) Program() *Program { return c.prog }

// Stats returns a snapshot of the interpreter counters.
func (c *Class) Stats() Stats { return c.stats }

// Killed reports whether a trap has retired the class.
func (c *Class) Killed() bool { return c.killed }

// Failure returns the death report, or nil while the class is healthy.
func (c *Class) Failure() *FailureReport { return c.report }

// SetFaultHandler installs a callback invoked (from the kill event, in
// virtual time) after a trap has rehomed the class's tasks.
func (c *Class) SetFaultHandler(fn func(*FailureReport)) { c.onFault = fn }

func (c *Class) ent(t *kernel.Task) *ventry {
	ve, _ := t.ClassData().(*ventry)
	return ve
}

func (c *Class) allocEntry() *ventry {
	if ve := c.free; ve != nil {
		c.free = ve.next
		*ve = ventry{}
		return ve
	}
	return &ventry{}
}

func (c *Class) freeEntry(ve *ventry) {
	*ve = ventry{next: c.free}
	c.free = ve
}

// TaskNew admits a task (fork or setscheduler-in).
func (c *Class) TaskNew(t *kernel.Task) {
	ve := c.allocEntry()
	ve.t = t
	t.SetClassData(ve)
}

// TaskDead retires an exited task's entry.
func (c *Class) TaskDead(t *kernel.Task) { c.dropEntry(t) }

// Detach retires the entry of a task leaving for another class.
func (c *Class) Detach(t *kernel.Task) { c.dropEntry(t) }

func (c *Class) dropEntry(t *kernel.Task) {
	ve := c.ent(t)
	if ve == nil {
		return
	}
	if ve.queued {
		c.unqueue(ve)
	}
	t.SetClassData(nil)
	c.freeEntry(ve)
}

// unqueue removes a queued entry by invalidating its ring slot (lazy: the
// slot itself is skipped and reclaimed at pop time).
func (c *Class) unqueue(ve *ventry) {
	r := c.ringFor(ve.kind, ve.qidx, int(ve.qcpu))
	r.live--
	c.nq[ve.qcpu]--
	ve.seq++
	ve.queued = false
}

func (c *Class) ringFor(kind, idx uint8, cpu int) *ring {
	if kind == QShared {
		return &c.shared[idx]
	}
	return &c.local[cpu*c.prog.LocalQueues+int(idx)]
}

// Enqueue runs the enqueue hook for a newly runnable task.
func (c *Class) Enqueue(cpu int, t *kernel.Task, wakeup bool) {
	flags := int64(0)
	if wakeup {
		flags = FlagWakeup
	}
	c.runEnqueue(cpu, t, flags)
}

// Dequeue forgets a task that blocked, died, or is migrating away.
func (c *Class) Dequeue(cpu int, t *kernel.Task, sleep bool) {
	if ve := c.ent(t); ve != nil && ve.queued {
		c.unqueue(ve)
	}
}

// Yield requeues the current task through the enqueue hook with FlagRequeue.
func (c *Class) Yield(cpu int, t *kernel.Task) { c.runEnqueue(cpu, t, FlagRequeue) }

// PutPrev requeues a still-runnable switched-out task, also FlagRequeue.
func (c *Class) PutPrev(cpu int, t *kernel.Task, preempted bool) {
	c.runEnqueue(cpu, t, FlagRequeue)
}

func (c *Class) runEnqueue(cpu int, t *kernel.Task, flags int64) {
	if c.killed {
		// The posted kill event rehomes every task at this same virtual
		// instant; queueing now would hand the dying class work.
		return
	}
	ve := c.ent(t)
	if ve == nil {
		return
	}
	if ve.queued {
		c.unqueue(ve) // defensive: never double-queue one task
	}
	c.observe(cpu, t.PID())
	_, trap, pc := c.exec(hookEnqueue, c.prog.Enqueue, c.prog.enqSteps, cpu, t, flags)
	if trap != TrapNone {
		c.trip(trap, hookEnqueue, cpu, pc)
	}
}

// PickNext runs the pick hook; a successful OpTryPop is the returned task.
func (c *Class) PickNext(cpu int) *kernel.Task {
	if c.killed {
		return nil
	}
	c.observe(cpu, -1)
	picked, trap, pc := c.exec(hookPick, c.prog.Pick, c.prog.pickSteps, cpu, nil, 0)
	if trap != TrapNone {
		c.trip(trap, hookPick, cpu, pc)
		return nil
	}
	if picked == nil {
		c.stats.EmptyPicks++
		return nil
	}
	c.stats.Picks++
	c.pickedAt[cpu] = picked.SumExec()
	if m := c.k.Metrics(); m != nil {
		m.Class(c.policy).CPU(cpu).Picks++
	}
	return picked
}

// Tick enforces the program's slice: once the running task has consumed its
// quantum and the class has more work reachable from this CPU, resched.
func (c *Class) Tick(cpu int, t *kernel.Task) {
	if c.killed || c.prog.Slice == 0 {
		return
	}
	if t.SumExec()-c.pickedAt[cpu] < c.prog.Slice {
		return
	}
	if c.backlog(cpu) > 0 {
		c.k.Resched(cpu)
	}
}

// backlog counts tasks a pick on cpu could reach: all shared queues plus
// cpu's local queues.
func (c *Class) backlog(cpu int) int {
	n := 0
	for i := range c.shared {
		n += c.shared[i].live
	}
	base := cpu * c.prog.LocalQueues
	for q := 0; q < c.prog.LocalQueues; q++ {
		n += c.local[base+q].live
	}
	return n
}

// SelectRQ keeps a waking task on its previous CPU when allowed, else the
// first allowed CPU — shared-queue programs make the choice mostly moot
// since any CPU's pick can claim the task.
func (c *Class) SelectRQ(t *kernel.Task, prevCPU int, wakeup bool) int {
	if t.AllowedOn(prevCPU) {
		return prevCPU
	}
	for cpu := 0; cpu < c.k.NumCPUs(); cpu++ {
		if t.AllowedOn(cpu) {
			return cpu
		}
	}
	return prevCPU
}

// CheckPreempt: bytecode programs express urgency through queue choice and
// slices, not wake preemption.
func (c *Class) CheckPreempt(cpu int, t *kernel.Task) {}

// Balance: shared queues self-balance; local queues are explicitly placed.
func (c *Class) Balance(cpu int) {}

// Migrate: the Dequeue/Enqueue bracket already moved the task.
func (c *Class) Migrate(t *kernel.Task, src, dst int) {}

// PrioChanged: the next enqueue re-reads nice/weight.
func (c *Class) PrioChanged(t *kernel.Task) {}

// AffinityChanged: pops re-check affinity against the picking CPU.
func (c *Class) AffinityChanged(t *kernel.Task) {}

// NRunnable returns queued tasks attributed to cpu (their enqueue target).
func (c *Class) NRunnable(cpu int) int {
	if c.killed {
		return 0
	}
	return c.nq[cpu]
}

// observe records the per-hook crossing cost and trace event for the
// verified tier, the cheap analogue of enokic's TraceCrossing.
func (c *Class) observe(cpu, pid int) {
	if m := c.k.Metrics(); m != nil {
		cm := m.Class(c.policy).CPU(cpu)
		cm.Crossings++
		cm.DispatchLat.Record(c.cfg.Overhead)
	}
	if tr := c.k.Tracer(); tr != nil {
		tr.Emit(trace.Event{
			Ts:     int64(c.k.Now()),
			Dur:    int64(c.cfg.Overhead),
			Kind:   trace.KindVExec,
			CPU:    int32(cpu),
			PID:    int32(pid),
			Policy: int32(c.policy),
		})
	}
}

// tryPop pops the first live, affinity-allowed task from r for cpu,
// compacting stale slots at the head as it scans.
func (c *Class) tryPop(r *ring, cpu int) *kernel.Task {
	if r.live == 0 {
		return nil
	}
	n := len(r.buf)
	i := r.head
	for i != r.tail {
		s := &r.buf[i]
		ve := c.ent(s.t)
		stale := ve == nil || !ve.queued || ve.seq != s.seq
		if stale {
			if i == r.head { // reclaim dead head slots
				r.buf[i] = qslot{}
				r.head = (i + 1) % n
			}
			i = (i + 1) % n
			continue
		}
		if !s.t.AllowedOn(cpu) {
			i = (i + 1) % n
			continue
		}
		t := s.t
		c.unqueue(ve)
		if i == r.head {
			r.buf[i] = qslot{}
			r.head = (i + 1) % n
		}
		return t
	}
	return nil
}

// exec interprets one hook. All machine state is fixed-size and lives on the
// stack: the register file, and a loop stack of (loop-pc, remaining-trips)
// pairs. Fuel is the verifier's worst-case step count; running out is a trap
// (unreachable for verified programs, kept as defense in depth).
func (c *Class) exec(hook int, code []Inst, fuel int64, cpu int, t *kernel.Task, flags int64) (picked *kernel.Task, trap Trap, trapPC int) {
	var regs [NumRegs]int64
	regs[1] = int64(cpu)
	var loopPC [MaxLoopDepth]int32
	var loopRem [MaxLoopDepth]int32
	sp := 0
	enqDone := false

	c.stats.Execs++
	pc := 0
	for {
		if fuel <= 0 {
			return nil, TrapFuel, pc
		}
		fuel--
		c.stats.Steps++
		in := &code[pc]
		switch in.Op {
		case OpRet:
			if hook == hookEnqueue && !enqDone {
				return nil, TrapNoEnqueue, pc
			}
			return nil, TrapNone, 0
		case OpLdi:
			regs[in.A] = in.Imm
		case OpMov:
			regs[in.A] = regs[in.B]
		case OpAdd:
			regs[in.A] += regs[in.B]
		case OpSub:
			regs[in.A] -= regs[in.B]
		case OpMul:
			regs[in.A] *= regs[in.B]
		case OpDiv:
			if regs[in.B] == 0 {
				return nil, TrapDivZero, pc
			}
			regs[in.A] /= regs[in.B]
		case OpMod:
			if regs[in.B] == 0 {
				return nil, TrapDivZero, pc
			}
			regs[in.A] %= regs[in.B]
		case OpAnd:
			regs[in.A] &= regs[in.B]
		case OpOr:
			regs[in.A] |= regs[in.B]
		case OpXor:
			regs[in.A] ^= regs[in.B]
		case OpAddi:
			regs[in.A] += in.Imm
		case OpJmp:
			pc = int(in.Imm)
			continue
		case OpJeq:
			if regs[in.A] == regs[in.B] {
				pc = int(in.Imm)
				continue
			}
		case OpJne:
			if regs[in.A] != regs[in.B] {
				pc = int(in.Imm)
				continue
			}
		case OpJlt:
			if regs[in.A] < regs[in.B] {
				pc = int(in.Imm)
				continue
			}
		case OpJle:
			if regs[in.A] <= regs[in.B] {
				pc = int(in.Imm)
				continue
			}
		case OpJgt:
			if regs[in.A] > regs[in.B] {
				pc = int(in.Imm)
				continue
			}
		case OpJge:
			if regs[in.A] >= regs[in.B] {
				pc = int(in.Imm)
				continue
			}
		case OpJeqz:
			if regs[in.A] == 0 {
				pc = int(in.Imm)
				continue
			}
		case OpJnez:
			if regs[in.A] != 0 {
				pc = int(in.Imm)
				continue
			}
		case OpJltz:
			if regs[in.A] < 0 {
				pc = int(in.Imm)
				continue
			}
		case OpJgez:
			if regs[in.A] >= 0 {
				pc = int(in.Imm)
				continue
			}
		case OpLoop:
			// Do-while back edge: first arrival pushes (pc, B-1) and jumps
			// back; later arrivals count down until the trips are spent.
			if sp > 0 && loopPC[sp-1] == int32(pc) {
				loopRem[sp-1]--
				if loopRem[sp-1] > 0 {
					pc = int(in.Imm)
					continue
				}
				sp-- // exhausted: pop and fall through
			} else if in.B > 1 {
				if sp == MaxLoopDepth {
					return nil, TrapLoopDepth, pc
				}
				loopPC[sp] = int32(pc)
				loopRem[sp] = int32(in.B) - 1
				sp++
				pc = int(in.Imm)
				continue
			}
		case OpLdf:
			switch Field(in.B) {
			case FieldPID:
				regs[in.A] = int64(t.PID())
			case FieldCPU:
				regs[in.A] = int64(cpu)
			case FieldNice:
				regs[in.A] = int64(t.Nice())
			case FieldWeight:
				regs[in.A] = kernel.WeightOf(t.Nice())
			case FieldVruntime:
				regs[in.A] = int64(t.SumExec())
			case FieldLastCPU:
				regs[in.A] = int64(t.CPU())
			case FieldFlags:
				regs[in.A] = flags
			}
		case OpQlen:
			regs[in.A] = int64(c.ringFor(in.B, uint8(in.Imm), cpu).live)
		case OpEnq:
			if enqDone {
				return nil, TrapDoubleEnqueue, pc
			}
			enqDone = true
			ve := c.ent(t)
			ve.seq++
			ve.queued = true
			ve.kind = in.A
			ve.qidx = uint8(in.Imm)
			ve.qcpu = int32(cpu)
			c.ringFor(in.A, uint8(in.Imm), cpu).push(t, ve.seq)
			c.nq[cpu]++
			c.stats.Enqueues++
		case OpTryPop:
			if got := c.tryPop(c.ringFor(in.A, uint8(in.Imm), cpu), cpu); got != nil {
				return got, TrapNone, 0
			}
		}
		pc++
	}
}

// trip retires the class after a runtime trap. Mirrors enokic's kill path:
// mark killed immediately (hooks go inert), then post a zero-delay kernel
// event that rehomes every task to the fallback policy and deregisters the
// class — never reentrantly from inside a scheduling hook.
func (c *Class) trip(trap Trap, hook, cpu, pc int) {
	if c.killed {
		return
	}
	c.killed = true
	c.pTrap, c.pHook, c.pPC, c.pCPU = trap, hookName(hook), pc, cpu
	if m := c.k.Metrics(); m != nil {
		m.Class(c.policy).CPU(cpu).Faults++
	}
	if tr := c.k.Tracer(); tr != nil {
		tr.EmitAlways(trace.Event{
			Ts:     int64(c.k.Now()),
			Kind:   trace.KindFault,
			CPU:    int32(cpu),
			PID:    -1,
			Policy: int32(c.policy),
			Arg:    int64(trap),
		})
	}
	c.k.Engine().Post(0, c.kill)
}

func (c *Class) kill() {
	// Rehome first: SetScheduler's dequeue path still consults the per-task
	// entries and rings, so they must stay intact until every task is out.
	n := c.k.RehomeTasks(c, c.cfg.Fallback)
	c.k.DeregisterClass(c.policy, c.cfg.Fallback)
	for i := range c.shared {
		c.shared[i].reset()
	}
	for i := range c.local {
		c.local[i].reset()
	}
	for i := range c.nq {
		c.nq[i] = 0
	}
	c.report = &FailureReport{
		Trap:         c.pTrap,
		Hook:         c.pHook,
		PC:           c.pPC,
		CPU:          c.pCPU,
		At:           c.k.Now(),
		TasksRehomed: n,
	}
	if tr := c.k.Tracer(); tr != nil {
		tr.EmitAlways(trace.Event{
			Ts:     int64(c.k.Now()),
			Kind:   trace.KindKill,
			CPU:    -1,
			PID:    -1,
			Policy: int32(c.policy),
			Arg:    int64(n),
		})
	}
	if c.onFault != nil {
		c.onFault(c.report)
	}
}
