package conformance

import (
	"bytes"
	"testing"
	"time"

	"enoki/internal/enokic"
	"enoki/internal/kernel"
	"enoki/internal/record"
)

// TestShardedRecordIdentity is the tentpole's determinism gate: for every
// scheduler class, the sharded run driven serially and the same run driven on
// worker goroutines must produce byte-identical per-shard record logs (and
// identical counters for the module-less CFS baseline). Under -race this also
// proves the parallel drive shares no unsynchronized state.
func TestShardedRecordIdentity(t *testing.T) {
	m := kernel.Machine80()
	for _, c := range Cases() {
		t.Run(c.Name, func(t *testing.T) {
			cfg := enokic.DefaultConfig()
			serial := RecordShardedRun(c, m, cfg, 0x5eed, 24, 120*time.Millisecond, false)
			par := RecordShardedRun(c, m, cfg, 0x5eed, 24, 120*time.Millisecond, true)

			if serial.MsgsDelivered == 0 {
				t.Fatal("no cross-shard messages delivered — the epoch protocol was not exercised")
			}
			if serial.EventsFired != par.EventsFired || serial.CtxSwitches != par.CtxSwitches {
				t.Fatalf("serial fired %d events / %d switches, parallel %d / %d",
					serial.EventsFired, serial.CtxSwitches, par.EventsFired, par.CtxSwitches)
			}
			if serial.WorkloadDone != par.WorkloadDone || serial.PingersDone != par.PingersDone {
				t.Fatalf("completion diverges: %d/%d workload, %d/%d pingers",
					serial.WorkloadDone, par.WorkloadDone, serial.PingersDone, par.PingersDone)
			}
			for i := range serial.Logs {
				if !bytes.Equal(serial.Logs[i], par.Logs[i]) {
					j := 0
					for j < len(serial.Logs[i]) && j < len(par.Logs[i]) && serial.Logs[i][j] == par.Logs[i][j] {
						j++
					}
					t.Fatalf("shard %d record logs diverge: %d vs %d bytes, first difference at byte %d",
						i, len(serial.Logs[i]), len(par.Logs[i]), j)
				}
			}
			if c.NewModule != nil {
				for i, log := range serial.Logs {
					if len(log) == 0 {
						t.Fatalf("shard %d produced an empty record log", i)
					}
					if _, err := record.Load(bytes.NewReader(log)); err != nil {
						t.Fatalf("shard %d record log not decodable: %v", i, err)
					}
				}
			}
		})
	}
}

// TestShardedConformance runs the full invariant suite per shard: every
// workload task and every cross-shard pinger completes, no task leaks, and
// no checker violation — the sharded machine upholds everything the
// single-kernel machine does.
func TestShardedConformance(t *testing.T) {
	m := kernel.Machine80()
	for _, c := range Cases() {
		t.Run(c.Name, func(t *testing.T) {
			res := RecordShardedRun(c, m, enokic.DefaultConfig(), 0xC0, 30, 2*time.Second, true)
			if res.WorkloadDone != res.WorkloadTasks {
				t.Errorf("%d/%d workload tasks completed", res.WorkloadDone, res.WorkloadTasks)
			}
			if res.PingersDone != res.Pingers {
				t.Errorf("%d/%d cross-shard pingers completed — remote wakes lost", res.PingersDone, res.Pingers)
			}
			for _, v := range res.Violations {
				t.Errorf("invariant violation: %v", v)
			}
		})
	}
}

// TestShardedKernelMapping pins the global↔local CPU mapping and the
// sub-machine carve-up on the two-socket Xeon.
func TestShardedKernelMapping(t *testing.T) {
	m := kernel.Machine80()
	sk := kernel.NewShardedKernel(m, kernel.CostsFor(m), 0)
	if sk.NumShards() != 2 {
		t.Fatalf("NumShards = %d, want 2", sk.NumShards())
	}
	for shard, wantCPUs := range map[int]int{0: 40, 1: 40} {
		if got := sk.ShardKernel(shard).NumCPUs(); got != wantCPUs {
			t.Errorf("shard %d has %d CPUs, want %d", shard, got, wantCPUs)
		}
	}
	if g := sk.GlobalCPU(1, 5); g != 45 {
		t.Errorf("GlobalCPU(1, 5) = %d, want 45", g)
	}
	if sh, lo := sk.ShardOfCPU(45); sh != 1 || lo != 5 {
		t.Errorf("ShardOfCPU(45) = (%d, %d), want (1, 5)", sh, lo)
	}
	sub := sk.ShardKernel(1).Topology()
	if sub.NumNodes != 1 || sub.NumLLCs != 4 {
		t.Errorf("shard 1 sub-machine: %d nodes / %d LLCs, want 1 / 4", sub.NumNodes, sub.NumLLCs)
	}
	if sk.Executor().Lookahead() != kernel.CostsFor(m).IPIDeliver+kernel.CostsFor(m).CrossNodeExtra {
		t.Errorf("default lookahead = %v", sk.Executor().Lookahead())
	}
}
