package enoki_test

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"enoki"
)

// TestNewSystemDefaults: the zero-option System is a runnable 8-core box.
func TestNewSystemDefaults(t *testing.T) {
	sys := enoki.NewSystem()
	sys.RegisterCFS(0)
	if n := sys.Kernel().NumCPUs(); n != 8 {
		t.Fatalf("default machine has %d CPUs, want 8", n)
	}
	done := 0
	sys.Kernel().Spawn("w", 0, enoki.BehaviorFunc(func(*enoki.Kernel, *enoki.Task) enoki.Action {
		done++
		return enoki.Action{Op: enoki.OpExit}
	}))
	sys.Run(time.Millisecond)
	if done != 1 {
		t.Fatal("task did not run on the default system")
	}
}

// TestNewSystemNUMA: WithMachine installs the real topology, and modules
// see it through Env.
func TestNewSystemNUMA(t *testing.T) {
	sys := enoki.NewSystem(enoki.WithMachine(enoki.Machine80()))
	var topo *enoki.Topology
	ad, err := sys.Load(1, func(env enoki.Env) enoki.Scheduler {
		topo = env.Topology()
		return enoki.NewFIFOScheduler(env, 1)
	})
	if err != nil || ad == nil {
		t.Fatalf("Load failed: %v", err)
	}
	sys.RegisterCFS(0)
	if topo == nil || topo.NumNodes() != 2 || topo.NumCPUs() != 80 {
		t.Fatalf("module-visible topology wrong: %+v", topo)
	}
	if topo.Distance(0, 79) != enoki.DistCrossNode {
		t.Error("cpu0 and cpu79 should be on different sockets")
	}
}

// TestSystemLoadErrors: Load surfaces the enokic sentinels unchanged.
func TestSystemLoadErrors(t *testing.T) {
	sys := enoki.NewSystem()
	if _, err := sys.Load(1, func(env enoki.Env) enoki.Scheduler {
		return enoki.NewFIFOScheduler(env, 1)
	}); err != nil {
		t.Fatalf("first load failed: %v", err)
	}
	_, err := sys.Load(1, func(env enoki.Env) enoki.Scheduler {
		return enoki.NewFIFOScheduler(env, 1)
	})
	if !errors.Is(err, enoki.ErrDuplicatePolicy) {
		t.Fatalf("err = %v, want ErrDuplicatePolicy", err)
	}
	_, err = sys.Load(2, func(env enoki.Env) enoki.Scheduler {
		return enoki.NewFIFOScheduler(env, 3) // mismatched policy
	})
	if !errors.Is(err, enoki.ErrPolicyMismatch) {
		t.Fatalf("err = %v, want ErrPolicyMismatch", err)
	}
}

// TestSystemRecorderDeferred: WithRecorder before any class exists must
// still produce a usable recorder once the drain class registers, with the
// module's earliest messages captured.
func TestSystemRecorderDeferred(t *testing.T) {
	var log bytes.Buffer
	sys := enoki.NewSystem(enoki.WithRecorder(&log, 0))
	if sys.Recorder() != nil {
		t.Fatal("recorder exists before its drain class is registered")
	}
	sys.MustLoad(1, func(env enoki.Env) enoki.Scheduler {
		return enoki.NewFIFOScheduler(env, 1)
	})
	sys.RegisterCFS(0)
	rec := sys.Recorder()
	if rec == nil {
		t.Fatal("recorder missing after drain class registration")
	}
	k := sys.Kernel()
	k.Spawn("w", 1, enoki.BehaviorFunc(func(*enoki.Kernel, *enoki.Task) enoki.Action {
		return enoki.Action{Op: enoki.OpExit}
	}))
	sys.Run(5 * time.Millisecond)
	rec.Close()
	if rec.Entries == 0 || log.Len() == 0 {
		t.Fatalf("recorder captured nothing: %d entries, %d bytes", rec.Entries, log.Len())
	}
}

// TestSystemSharded: WithShards partitions the two-socket machine, Load and
// RegisterCFS apply per shard, tasks run on both shards, and the serial and
// parallel drives complete the same work.
func TestSystemSharded(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		sys := enoki.NewSystem(
			enoki.WithMachine(enoki.Machine80()),
			enoki.WithShards(2),
			enoki.WithParallelSim(parallel),
		)
		if sys.NumShards() != 2 {
			t.Fatalf("NumShards = %d, want 2", sys.NumShards())
		}
		if sys.Kernel() != nil || sys.Engine() != nil {
			t.Fatal("sharded System must not expose a single kernel/engine")
		}
		if _, err := sys.Load(1, func(env enoki.Env) enoki.Scheduler {
			return enoki.NewFIFOScheduler(env, 1)
		}); err != nil {
			t.Fatalf("sharded Load failed: %v", err)
		}
		if got := len(sys.Adapters()); got != 2 {
			t.Fatalf("sharded Load made %d adapters, want one per shard", got)
		}
		sys.RegisterCFS(0)
		done := make([]int, sys.NumShards())
		for i := 0; i < sys.NumShards(); i++ {
			i := i
			if n := sys.ShardKernel(i).NumCPUs(); n != 40 {
				t.Fatalf("shard %d has %d CPUs, want 40", i, n)
			}
			sys.ShardKernel(i).Spawn("w", 1, enoki.BehaviorFunc(func(*enoki.Kernel, *enoki.Task) enoki.Action {
				done[i]++
				return enoki.Action{Op: enoki.OpExit}
			}))
		}
		sys.Run(time.Millisecond)
		sys.Close()
		for i, n := range done {
			if n != 1 {
				t.Errorf("parallel=%v: shard %d task ran %d times, want 1", parallel, i, n)
			}
		}
	}
}

// TestSystemShardedRejects: the sharded constructor rejects shard counts
// that disagree with the topology and single-kernel taps.
func TestSystemShardedRejects(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("WithShards mismatch", func() {
		enoki.NewSystem(enoki.WithMachine(enoki.Machine80()), enoki.WithShards(3))
	})
	mustPanic("WithParallelSim alone", func() {
		enoki.NewSystem(enoki.WithParallelSim(true))
	})
	mustPanic("WithRecorder sharded", func() {
		enoki.NewSystem(enoki.WithMachine(enoki.Machine80()), enoki.WithShards(0),
			enoki.WithRecorder(&bytes.Buffer{}, 0))
	})
	mustPanic("RegisterClass sharded", func() {
		sys := enoki.NewSystem(enoki.WithMachine(enoki.Machine80()), enoki.WithShards(0))
		sys.RegisterClass(0, enoki.NewCFS(sys.ShardKernel(0)))
	})
}

// TestSystemCloseIdempotence: Close is safe on both system flavors — the
// first call succeeds, the second reports ErrSystemClosed, and a closed
// System rejects Load with a typed error instead of corrupting state.
func TestSystemCloseIdempotence(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func() *enoki.System
	}{
		{"unsharded", func() *enoki.System { return enoki.NewSystem() }},
		{"sharded", func() *enoki.System {
			return enoki.NewSystem(enoki.WithMachine(enoki.Machine80()),
				enoki.WithShards(0), enoki.WithParallelSim(true))
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sys := tc.mk()
			sys.RegisterCFS(0)
			sys.Run(time.Millisecond)
			if err := sys.Close(); err != nil {
				t.Fatalf("first Close: %v", err)
			}
			if err := sys.Close(); !errors.Is(err, enoki.ErrSystemClosed) {
				t.Fatalf("second Close = %v, want ErrSystemClosed", err)
			}
			_, err := sys.Load(1, func(env enoki.Env) enoki.Scheduler { return nil })
			if !errors.Is(err, enoki.ErrSystemClosed) {
				t.Fatalf("Load after Close = %v, want ErrSystemClosed", err)
			}
			func() {
				defer func() {
					if recover() == nil {
						t.Error("Run on closed System did not panic")
					}
				}()
				sys.Run(time.Millisecond)
			}()
			func() {
				defer func() {
					if recover() == nil {
						t.Error("RegisterCFS on closed System did not panic")
					}
				}()
				sys.RegisterCFS(2)
			}()
		})
	}
}
