package sim

import (
	"fmt"
	"testing"
	"time"

	"enoki/internal/ktime"
)

// shardedPingPong builds a deterministic multi-shard workload: every shard
// runs a local event chain and periodically sends a message to the next
// shard, which logs it and replies. Returns the per-shard logs.
func shardedPingPong(parallel bool, shards, rounds int) [][]string {
	la := 2 * time.Microsecond
	s := NewSharded(shards, la)
	defer s.Close()
	s.SetParallel(parallel)
	logs := make([][]string, shards)

	for i := 0; i < shards; i++ {
		i := i
		eng := s.Shard(i)
		n := 0
		var local func()
		local = func() {
			n++
			logs[i] = append(logs[i], fmt.Sprintf("local %d @%d", n, eng.Now()))
			if n < rounds {
				eng.Post(ktime.Duration(300+50*i)*time.Nanosecond, local)
			}
			if n%3 == 0 {
				to := (i + 1) % shards
				at := eng.Now().Add(la + ktime.Duration(i)*100)
				s.Send(i, to, at, func() {
					logs[to] = append(logs[to], fmt.Sprintf("msg from %d @%d", i, s.Shard(to).Now()))
				})
			}
		}
		eng.Post(time.Microsecond, local)
	}
	s.RunUntilIdle()
	return logs
}

// TestShardedSerialParallelIdentity is the core determinism oracle: the
// parallel drive must produce byte-identical per-shard logs to the serial
// drive. Run with -race this also proves the epoch barriers are sound.
func TestShardedSerialParallelIdentity(t *testing.T) {
	serial := shardedPingPong(false, 4, 60)
	par := shardedPingPong(true, 4, 60)
	for i := range serial {
		if len(serial[i]) != len(par[i]) {
			t.Fatalf("shard %d: %d serial entries vs %d parallel", i, len(serial[i]), len(par[i]))
		}
		for j := range serial[i] {
			if serial[i][j] != par[i][j] {
				t.Fatalf("shard %d diverges at %d: %q vs %q", i, j, serial[i][j], par[i][j])
			}
		}
	}
}

// TestShardedRepeatedRunsIdentical: the same parallel workload twice gives
// the same logs — determinism across runs, not only across drive modes.
func TestShardedRepeatedRunsIdentical(t *testing.T) {
	a := shardedPingPong(true, 3, 40)
	b := shardedPingPong(true, 3, 40)
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("shard %d run divergence at %d", i, j)
			}
		}
	}
}

// TestShardedMergeOrder pins the deterministic merge tiebreak: messages due
// at the same instant deliver ordered by destination shard, then source
// shard, then send sequence.
func TestShardedMergeOrder(t *testing.T) {
	s := NewSharded(3, time.Microsecond)
	var order []string
	at := ktime.Time(0).Add(5 * time.Microsecond)
	log := func(tag string) func() { return func() { order = append(order, tag) } }
	// Sent from shard context before any run (all clocks at 0).
	s.Send(2, 1, at, log("2→1 a"))
	s.Send(2, 1, at, log("2→1 b")) // same tuple: send-seq breaks the tie
	s.Send(1, 0, at, log("1→0"))
	s.Send(0, 1, at, log("0→1"))
	s.Send(0, 2, at, log("0→2"))
	s.RunUntilIdle()
	want := []string{"1→0", "0→1", "2→1 a", "2→1 b", "0→2"}
	if len(order) != len(want) {
		t.Fatalf("delivered %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("merge order = %v, want %v", order, want)
		}
	}
	if s.MsgsDelivered() != 5 || s.MsgsSent() != 5 {
		t.Fatalf("sent=%d delivered=%d", s.MsgsSent(), s.MsgsDelivered())
	}
}

// TestShardedSendUnderLookaheadPanics: a message due before now+lookahead
// would race the epoch protocol and must be rejected loudly.
func TestShardedSendUnderLookaheadPanics(t *testing.T) {
	s := NewSharded(2, time.Microsecond)
	defer func() {
		if recover() == nil {
			t.Fatal("Send under the lookahead floor did not panic")
		}
	}()
	s.Send(0, 1, ktime.Time(0).Add(500*time.Nanosecond), func() {})
}

// TestShardedBatchHooks: all same-instant messages to one shard drain inside
// a single begin/end bracket.
func TestShardedBatchHooks(t *testing.T) {
	s := NewSharded(2, time.Microsecond)
	var trace []string
	s.SetBatchHooks(
		func(sh int) { trace = append(trace, fmt.Sprintf("begin %d", sh)) },
		func(sh int) { trace = append(trace, fmt.Sprintf("end %d", sh)) },
	)
	at := ktime.Time(0).Add(3 * time.Microsecond)
	for i := 0; i < 4; i++ {
		s.Send(0, 1, at, func() { trace = append(trace, "msg") })
	}
	s.RunUntilIdle()
	want := []string{"begin 1", "msg", "msg", "msg", "msg", "end 1"}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v", trace)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

// TestShardedRunUntilComposes: clocks land exactly on the boundary and
// back-to-back RunUntil calls behave like one long run.
func TestShardedRunUntilComposes(t *testing.T) {
	build := func() (*Sharded, *int) {
		s := NewSharded(2, time.Microsecond)
		count := new(int)
		for i := 0; i < 2; i++ {
			eng := s.Shard(i)
			var chain func()
			chain = func() { *count++; eng.Post(10*time.Microsecond, chain) }
			eng.Post(10*time.Microsecond, chain)
		}
		return s, count
	}
	a, ca := build()
	a.RunUntil(ktime.Time(0).Add(time.Millisecond))
	b, cb := build()
	for i := 0; i < 10; i++ {
		b.RunUntil(ktime.Time(0).Add(time.Duration(i+1) * 100 * time.Microsecond))
	}
	if *ca != *cb {
		t.Fatalf("split runs fired %d events, one run fired %d", *cb, *ca)
	}
	if a.Now() != b.Now() || a.Shard(0).Now() != b.Shard(0).Now() {
		t.Fatalf("clocks: %v/%v vs %v/%v", a.Now(), a.Shard(0).Now(), b.Now(), b.Shard(0).Now())
	}
}

// TestShardedEpochJumpsDeadTime: with sparse events the executor must not
// grind through empty lookahead windows — epochs jump to the next event.
func TestShardedEpochJumpsDeadTime(t *testing.T) {
	s := NewSharded(4, time.Microsecond)
	fired := 0
	// Two events a full second apart: epoch count must stay tiny.
	s.Shard(0).Post(time.Second, func() { fired++ })
	s.Shard(3).Post(2*time.Second, func() { fired++ })
	s.RunUntilIdle()
	if fired != 2 {
		t.Fatalf("fired %d", fired)
	}
	if s.Epochs() > 8 {
		t.Fatalf("%d epochs for two sparse events — dead time not skipped", s.Epochs())
	}
}

// TestShardedZeroAllocSteadyState: a shard-local steady state (no cross
// traffic) must not allocate per epoch.
func TestShardedZeroAllocSteadyState(t *testing.T) {
	s := NewSharded(2, time.Microsecond)
	for i := 0; i < 2; i++ {
		eng := s.Shard(i)
		var chain func()
		chain = func() { eng.Post(500*time.Nanosecond, chain) }
		eng.Post(500*time.Nanosecond, chain)
	}
	// Warm past a full wheel rotation so every slot's backing slice exists.
	s.RunUntil(ktime.Time(0).Add(5 * time.Millisecond))
	end := s.Now()
	allocs := testing.AllocsPerRun(200, func() {
		end = end.Add(10 * time.Microsecond)
		s.RunUntil(end)
	})
	if allocs != 0 {
		t.Fatalf("sharded steady state allocates %.1f/run, want 0", allocs)
	}
}
