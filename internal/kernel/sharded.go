// ShardedKernel partitions a NUMA machine into one sub-kernel per node, each
// on its own sim shard (sim.Sharded): shard i owns node i's CPUs, run queues,
// timers, and scheduler class instances, and advances independently between
// cross-node interactions. The only cross-shard traffic is the remote wake —
// physically a cross-socket IPI, which is why the executor lookahead defaults
// to the calibrated cross-node IPI latency: no real interaction is faster, so
// the conservative epoch protocol loses nothing.
//
// The partition is also the performance story on large machines: every
// kernel-side scan that is O(machine) in the single-kernel model — the NOHZ
// idle-CPU search on each busy tick, affinity clamps, balancer sweeps — is
// O(node) here, and each shard's event queue holds a node's worth of timers
// instead of the whole machine's. The sharded run is deterministic: driving
// the shards serially or on worker goroutines yields bit-identical per-shard
// simulations (see sim.Sharded), which the conformance suite pins by
// comparing per-shard record logs byte for byte.
package kernel

import (
	"fmt"
	"time"

	"enoki/internal/ktime"
	"enoki/internal/sim"
)

// ShardedKernel runs one Kernel per NUMA node under the epoch-merge executor.
type ShardedKernel struct {
	ex      *sim.Sharded
	machine Machine
	costs   Costs
	kernels []*Kernel
	// base[i] is the first global CPU id of shard i; shard i owns global
	// CPUs [base[i], base[i]+kernels[i].NumCPUs()).
	base []int
	// crossWakes[i] counts remote wakes submitted by shard i; per-shard so
	// the parallel drive updates it race-free.
	crossWakes []uint64
}

// NewShardedKernel partitions m by NUMA node: one sub-kernel per node, each
// with the node's CPUs renumbered from zero and the full machine's cost
// table (the sub-kernels must not be re-calibrated as small machines — they
// are slices of the big one). lookahead is the executor epoch length; zero
// selects the calibrated cross-node IPI latency, the true minimum latency of
// the only cross-shard interaction.
//
// Each node's CPUs must be contiguous in the global numbering (true for
// every MachineNUMA-built topology); anything else panics, because the
// global↔local id mapping would need a table instead of an offset.
func NewShardedKernel(m Machine, costs Costs, lookahead time.Duration) *ShardedKernel {
	if m.NumNodes < 1 {
		panic("kernel: NewShardedKernel on a machine without nodes")
	}
	if lookahead <= 0 {
		lookahead = costs.IPIDeliver + costs.CrossNodeExtra
	}
	sk := &ShardedKernel{
		ex:         sim.NewSharded(m.NumNodes, lookahead),
		machine:    m,
		costs:      costs,
		kernels:    make([]*Kernel, m.NumNodes),
		base:       make([]int, m.NumNodes),
		crossWakes: make([]uint64, m.NumNodes),
	}
	for nd := 0; nd < m.NumNodes; nd++ {
		lo, hi := nodeRange(m, nd)
		sk.base[nd] = lo
		sub := subMachine(m, nd, lo, hi)
		sk.kernels[nd] = New(sk.ex.Shard(nd), sub, costs)
	}
	// Cross-shard deliveries for one (shard, instant) batch run inside one
	// IPI batch window: a burst of remote wakes flushes one kick per target
	// CPU, exactly like a local wake burst.
	sk.ex.SetBatchHooks(
		func(i int) { sk.kernels[i].beginBatch() },
		func(i int) { sk.kernels[i].flushBatch() },
	)
	return sk
}

// nodeRange returns the contiguous global CPU range [lo, hi) of node nd,
// panicking if the node's CPUs are interleaved with another node's.
func nodeRange(m Machine, nd int) (int, int) {
	lo, hi := -1, -1
	for cpu := 0; cpu < m.NumCPUs; cpu++ {
		if m.NodeOf[cpu] != nd {
			continue
		}
		if lo == -1 {
			lo = cpu
		} else if cpu != hi {
			panic(fmt.Sprintf("kernel: node %d CPUs not contiguous (%d after %d)", nd, cpu, hi-1))
		}
		hi = cpu + 1
	}
	if lo == -1 {
		panic(fmt.Sprintf("kernel: node %d has no CPUs", nd))
	}
	return lo, hi
}

// subMachine carves node nd (global CPUs [lo, hi)) out of m as a standalone
// single-node machine with locally renumbered LLC domains.
func subMachine(m Machine, nd, lo, hi int) Machine {
	n := hi - lo
	node := make([]int, n)
	var llc []int
	numLLC := 0
	if m.LLCOf != nil {
		llc = make([]int, n)
		seen := map[int]int{}
		for i := 0; i < n; i++ {
			g := m.LLCOf[lo+i]
			l, ok := seen[g]
			if !ok {
				l = len(seen)
				seen[g] = l
			}
			llc[i] = l
		}
		numLLC = len(seen)
	}
	return Machine{
		Name:    fmt.Sprintf("%s [node %d]", m.Name, nd),
		NumCPUs: n,
		NodeOf:  node, NumNodes: 1,
		LLCOf: llc, NumLLCs: numLLC,
	}
}

// NumShards returns the shard (node) count.
func (sk *ShardedKernel) NumShards() int { return len(sk.kernels) }

// ShardKernel returns shard i's sub-kernel. Classes and modules register per
// shard; tasks spawned through it live on that shard for their lifetime.
func (sk *ShardedKernel) ShardKernel(i int) *Kernel { return sk.kernels[i] }

// Executor returns the underlying epoch-merge executor.
func (sk *ShardedKernel) Executor() *sim.Sharded { return sk.ex }

// Machine returns the full (unsharded) machine description.
func (sk *ShardedKernel) Machine() Machine { return sk.machine }

// Costs returns the shared cost table.
func (sk *ShardedKernel) Costs() Costs { return sk.costs }

// GlobalCPU maps shard i's local CPU id to the machine-wide id.
func (sk *ShardedKernel) GlobalCPU(shard, local int) int { return sk.base[shard] + local }

// ShardOfCPU maps a machine-wide CPU id to (shard, local id).
func (sk *ShardedKernel) ShardOfCPU(cpu int) (int, int) {
	nd := sk.machine.NodeOf[cpu]
	return nd, cpu - sk.base[nd]
}

// SetParallel selects the drive mode of the executor: worker goroutines or
// serial shard-order. Both produce bit-identical simulations.
func (sk *ShardedKernel) SetParallel(on bool) { sk.ex.SetParallel(on) }

// RemoteWake wakes a task owned by shard `to` from shard `from`'s execution
// context: the cross-socket IPI of the sharded model. The wake lands one
// lookahead later — the calibrated cross-node delivery latency — and drains
// inside the target shard's IPI batch window, so a burst of remote wakes at
// one instant flushes one kick per target CPU. Must be called from shard
// `from`'s context (one of its event closures) or between runs.
func (sk *ShardedKernel) RemoteWake(from, to int, t *Task) {
	sk.crossWakes[from]++
	k := sk.kernels[to]
	// The closure must not touch t here: the sender runs concurrently with
	// the owning shard, so the task is only dereferenced on delivery, inside
	// shard `to`'s execution context.
	sk.ex.Send(from, to, sk.ex.Shard(from).Now().Add(ktime.Duration(sk.ex.Lookahead())),
		func() { k.Wake(t) })
}

// CrossWakes returns how many remote wakes have been submitted. Read it
// between runs.
func (sk *ShardedKernel) CrossWakes() uint64 {
	var n uint64
	for _, c := range sk.crossWakes {
		n += c
	}
	return n
}

// Now returns the executor's global virtual-time floor.
func (sk *ShardedKernel) Now() ktime.Time { return sk.ex.Now() }

// RunFor advances the whole sharded simulation by d.
func (sk *ShardedKernel) RunFor(d time.Duration) {
	sk.ex.RunUntil(sk.ex.Now().Add(ktime.Duration(d)))
}

// RunUntil advances the whole sharded simulation to absolute virtual time t;
// every shard clock finishes at exactly t. With Now and NextEventTime it
// makes a ShardedKernel a sim.FleetNode: one machine of a simulated cluster.
func (sk *ShardedKernel) RunUntil(t ktime.Time) { sk.ex.RunUntil(t) }

// NextEventTime returns the earliest pending work anywhere in the machine —
// shard events or in-flight cross-shard messages. Call it between runs.
func (sk *ShardedKernel) NextEventTime() (ktime.Time, bool) { return sk.ex.NextEventTime() }

// Inject commits fn for execution on shard `to` of this machine at absolute
// virtual time at, from a fleet-level coordinator between machine epochs
// (see sim.Sharded.Inject). This is how cluster-level commands — job starts,
// stops, control messages — enter a machine deterministically.
func (sk *ShardedKernel) Inject(to int, at ktime.Time, fn func()) { sk.ex.Inject(to, at, fn) }

// RunUntilIdle runs until every shard's event queue drains and no message is
// in flight.
func (sk *ShardedKernel) RunUntilIdle() { sk.ex.RunUntilIdle() }

// Close stops the executor's worker goroutines (parallel drive only).
func (sk *ShardedKernel) Close() { sk.ex.Close() }

// NumTasks sums the live-task counts of every shard.
func (sk *ShardedKernel) NumTasks() int {
	n := 0
	for _, k := range sk.kernels {
		n += k.NumTasks()
	}
	return n
}

// CtxSwitches sums context switches across shards.
func (sk *ShardedKernel) CtxSwitches() uint64 {
	var n uint64
	for _, k := range sk.kernels {
		n += k.CtxSwitches
	}
	return n
}

// Wakeups sums task wakeups across shards (remote wakes included: they run
// on the owning shard).
func (sk *ShardedKernel) Wakeups() uint64 {
	var n uint64
	for _, k := range sk.kernels {
		n += k.Wakeups
	}
	return n
}

// IPIsSent sums flushed cross-CPU kicks across shards.
func (sk *ShardedKernel) IPIsSent() uint64 {
	var n uint64
	for _, k := range sk.kernels {
		n += k.IPIsSent
	}
	return n
}

// EventsFired sums engine events fired across shards.
func (sk *ShardedKernel) EventsFired() uint64 { return sk.ex.EventsFired() }
