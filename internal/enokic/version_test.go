package enokic

import (
	"errors"
	"testing"
	"time"

	"enoki/internal/kernel"
)

// TestUpgradeToVersionLineage: a committed UpgradeTo renames the serving
// generation and remembers the replaced one; Rollback restores it through
// the same transactional path, and a second Rollback rolls forward again
// (the lineage always holds the last replaced pair).
func TestUpgradeToVersionLineage(t *testing.T) {
	k, a := newRig(t, wfqFactory)
	if a.Version() != InitialVersion {
		t.Fatalf("fresh adapter version = %q, want %q", a.Version(), InitialVersion)
	}
	done := 0
	for i := 0; i < 4; i++ {
		k.Spawn("w", policyEnoki, spin(10*time.Millisecond, 500*time.Microsecond),
			kernel.WithExitObserver(func() { done++ }))
	}

	step := func(what string, act func(func(UpgradeReport)) error) UpgradeReport {
		t.Helper()
		var rep UpgradeReport
		resolved := false
		k.Engine().After(time.Millisecond, func() {
			if err := act(func(r UpgradeReport) { rep = r; resolved = true }); err != nil {
				t.Errorf("%s: %v", what, err)
			}
		})
		k.RunFor(20 * time.Millisecond)
		if !resolved {
			t.Fatalf("%s never resolved", what)
		}
		if rep.Err != nil || rep.RolledBack {
			t.Fatalf("%s not clean: %+v", what, rep)
		}
		return rep
	}

	step("upgrade to v2", func(d func(UpgradeReport)) error { return a.UpgradeTo("v2", wfqFactory, d) })
	if a.Version() != "v2" {
		t.Fatalf("after UpgradeTo: version = %q, want v2", a.Version())
	}
	step("rollback to v0", func(d func(UpgradeReport)) error { return a.Rollback(d) })
	if a.Version() != InitialVersion {
		t.Fatalf("after Rollback: version = %q, want %q", a.Version(), InitialVersion)
	}
	step("roll forward to v2", func(d func(UpgradeReport)) error { return a.Rollback(d) })
	if a.Version() != "v2" {
		t.Fatalf("after second Rollback: version = %q, want v2", a.Version())
	}
	k.RunFor(100 * time.Millisecond)
	if done != 4 {
		t.Fatalf("tasks lost across version flips: %d/4 completed", done)
	}
}

// TestUpgradeToRolledBackKeepsVersion: a faulty UpgradeTo whose transaction
// rolls back leaves both the serving version and the rollback lineage
// untouched — the old generation never stopped serving, so there is still
// nothing to roll back to.
func TestUpgradeToRolledBackKeepsVersion(t *testing.T) {
	k, a := newRig(t, wfqFactory)
	k.Spawn("w", policyEnoki, spin(5*time.Millisecond, 500*time.Microsecond))
	var rep UpgradeReport
	k.Engine().After(time.Millisecond, func() {
		a.UpgradeTo("v2", faultyFactory, func(r UpgradeReport) { rep = r })
	})
	k.RunFor(100 * time.Millisecond)
	if !rep.RolledBack {
		t.Fatalf("faulty upgrade did not roll back: %+v", rep)
	}
	if a.Version() != InitialVersion {
		t.Fatalf("rolled-back upgrade changed version to %q", a.Version())
	}
	if err := a.Rollback(nil); !errors.Is(err, ErrNoPreviousVersion) {
		t.Fatalf("Rollback after an aborted-only history = %v, want ErrNoPreviousVersion", err)
	}
}

// TestRollbackWithoutHistory: Rollback on a freshly loaded adapter is a
// typed refusal, not a no-op or a panic.
func TestRollbackWithoutHistory(t *testing.T) {
	_, a := newRig(t, wfqFactory)
	if err := a.Rollback(nil); !errors.Is(err, ErrNoPreviousVersion) {
		t.Fatalf("Rollback without history = %v, want ErrNoPreviousVersion", err)
	}
}
