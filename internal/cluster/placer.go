package cluster

// Placer is the placement policy of the cluster job scheduler: given a job
// and the control plane's view of the fleet, pick the machine the job should
// run on, or -1 when no machine can take it. Pick runs on the control-plane
// engine, so implementations may keep state without locking — but they must
// be deterministic functions of the job and the view, because placement
// decisions feed the record logs the determinism suite compares byte for
// byte.
type Placer interface {
	Name() string
	Pick(j *Job, view []MachineView) int
}

// RoundRobin rotates over alive machines in id order.
type RoundRobin struct{ next int }

// Name implements Placer.
func (p *RoundRobin) Name() string { return "roundrobin" }

// Pick returns the next alive machine after the previous pick.
func (p *RoundRobin) Pick(_ *Job, view []MachineView) int {
	n := len(view)
	for i := 0; i < n; i++ {
		m := (p.next + i) % n
		if view[m].Alive {
			p.next = (m + 1) % n
			return m
		}
	}
	return -1
}

// LeastLoaded picks the alive machine with the fewest assigned jobs per CPU
// (cross-multiplied, so heterogeneous fleets compare without floats); ties
// break toward the lowest machine id.
type LeastLoaded struct{}

// Name implements Placer.
func (LeastLoaded) Name() string { return "leastloaded" }

// Pick returns the least-loaded alive machine.
func (LeastLoaded) Pick(_ *Job, view []MachineView) int {
	best := -1
	for m := range view {
		v := &view[m]
		if !v.Alive {
			continue
		}
		if best == -1 || v.Assigned*view[best].CPUs < view[best].Assigned*v.CPUs {
			best = m
		}
	}
	return best
}

// Pack fills machines first-fit in id order up to PerCPU assigned jobs per
// CPU, spilling to the least-loaded machine when every machine is at
// capacity. It concentrates load on a prefix of the fleet — the placement
// policy that makes rebalancing migrations interesting.
type Pack struct {
	// PerCPU is the soft capacity in assigned jobs per CPU; zero means 2.
	PerCPU int
}

// Name implements Placer.
func (p *Pack) Name() string { return "pack" }

// Pick returns the first alive machine under capacity.
func (p *Pack) Pick(j *Job, view []MachineView) int {
	per := p.PerCPU
	if per <= 0 {
		per = 2
	}
	for m := range view {
		v := &view[m]
		if v.Alive && v.Assigned < per*v.CPUs {
			return m
		}
	}
	return LeastLoaded{}.Pick(j, view)
}

// PlacerByName maps a CLI name to a fresh placer instance; nil for unknown
// names.
func PlacerByName(name string) Placer {
	switch name {
	case "roundrobin":
		return &RoundRobin{}
	case "leastloaded":
		return LeastLoaded{}
	case "pack":
		return &Pack{}
	}
	return nil
}
