package stats

import (
	"math"
	"math/bits"
	"time"
)

// LogHist is the compact sibling of Histogram, sized for always-on
// observability: values are grouped by power-of-two magnitude with 8 linear
// sub-buckets per octave (worst-case relative quantile error ~12%, 4 KiB per
// instance instead of Histogram's 32 KiB). The metrics layer keeps one per
// metric per CPU per scheduler class, so the footprint matters more than the
// last percent of quantile precision. The zero value is ready to use and
// Record never allocates.
type LogHist struct {
	buckets [64][8]uint64
	count   uint64
	sum     float64
	min     int64
	max     int64
}

const logHistSubBits = 3 // 8 sub-buckets per power of two

func logBucketOf(v int64) (int, int) {
	if v < 1 {
		v = 1
	}
	u := uint64(v)
	exp := 63 - bits.LeadingZeros64(u)
	var sub int
	if exp > logHistSubBits {
		sub = int((u >> (uint(exp) - logHistSubBits)) & 7)
	} else {
		sub = int(u & 7)
	}
	return exp, sub
}

func logBucketMid(exp, sub int) int64 {
	if exp <= logHistSubBits {
		return int64(sub)
	}
	lo := (uint64(1) << uint(exp)) | (uint64(sub) << (uint(exp) - logHistSubBits))
	width := uint64(1) << (uint(exp) - logHistSubBits)
	return int64(lo + width/2)
}

// RecordValue adds one dimensionless observation (queue depths, counts).
// Negative values clamp to zero.
func (h *LogHist) RecordValue(v int64) {
	if v < 0 {
		v = 0
	}
	exp, sub := logBucketOf(v)
	h.buckets[exp][sub]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += float64(v)
}

// Record adds one duration observation.
func (h *LogHist) Record(d time.Duration) { h.RecordValue(int64(d)) }

// Count returns the number of observations.
func (h *LogHist) Count() uint64 { return h.count }

// Min returns the smallest observation (0 if empty).
func (h *LogHist) Min() int64 { return h.min }

// Max returns the largest observation (0 if empty).
func (h *LogHist) Max() int64 { return h.max }

// Mean returns the arithmetic mean (0 if empty).
func (h *LogHist) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Quantile returns the q-quantile (q in [0,1]) using bucket midpoints,
// clamped to the observed min/max.
func (h *LogHist) Quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(h.count)))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for exp := 0; exp < 64; exp++ {
		for sub := 0; sub < 8; sub++ {
			c := h.buckets[exp][sub]
			if c == 0 {
				continue
			}
			seen += c
			if seen >= rank {
				m := logBucketMid(exp, sub)
				if m < h.min {
					m = h.min
				}
				if m > h.max {
					m = h.max
				}
				return m
			}
		}
	}
	return h.max
}

// Merge adds every observation of o into h.
func (h *LogHist) Merge(o *LogHist) {
	if o.count == 0 {
		return
	}
	for exp := 0; exp < 64; exp++ {
		for sub := 0; sub < 8; sub++ {
			h.buckets[exp][sub] += o.buckets[exp][sub]
		}
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
}

// Reset clears the histogram.
func (h *LogHist) Reset() { *h = LogHist{} }

// Summary is the fixed quantile digest a LogHist reduces to for tables and
// JSON output. Fields are int64 in the histogram's native unit (nanoseconds
// for latency metrics, counts for depth metrics).
type Summary struct {
	Count uint64  `json:"count"`
	Min   int64   `json:"min"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P90   int64   `json:"p90"`
	P99   int64   `json:"p99"`
	Max   int64   `json:"max"`
}

// Summarize reduces the histogram to its digest.
func (h *LogHist) Summarize() Summary {
	return Summary{
		Count: h.count,
		Min:   h.min,
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
		Max:   h.max,
	}
}
