package arbiter

import (
	"testing"
	"time"

	"enoki/internal/core"
	"enoki/internal/ktime"
)

type fakeEnv struct {
	cpus     int
	rescheds []int
}

type nopLock struct{}

func (nopLock) Lock()   {}
func (nopLock) Unlock() {}

func (e *fakeEnv) Now() ktime.Time                   { return 0 }
func (e *fakeEnv) NumCPUs() int                      { return e.cpus }
func (e *fakeEnv) SameNode(a, b int) bool            { return true }
func (e *fakeEnv) Topology() *core.Topology          { return core.FlatTopology(e.cpus) }
func (e *fakeEnv) ArmTimer(cpu int, d time.Duration) {}
func (e *fakeEnv) Resched(cpu int)                   { e.rescheds = append(e.rescheds, cpu) }
func (e *fakeEnv) Rand() *ktime.Rand                 { return ktime.NewRand(1) }
func (e *fakeEnv) NewMutex(string) core.Locker       { return nopLock{} }

func tok(pid, cpu int, gen uint64) *core.Schedulable {
	return core.NewSchedulable(pid, cpu, gen)
}

// rig builds an arbiter managing cores 1..3 of a 4-cpu machine, with queues
// attached and one registered process.
func rig(t *testing.T) (*Sched, *core.HintQueue, *core.RevQueue, *fakeEnv) {
	t.Helper()
	env := &fakeEnv{cpus: 4}
	s := New(env, 1, []int{1, 2, 3})
	uq := core.NewHintQueue(16)
	if s.RegisterQueue(uq) < 0 {
		t.Fatal("queue rejected")
	}
	rq := core.NewRevQueue(16)
	if s.RegisterReverseQueue(rq) < 0 {
		t.Fatal("rev queue rejected")
	}
	return s, uq, rq, env
}

func TestGrantFlow(t *testing.T) {
	s, _, rq, _ := rig(t)
	// Register two activations for proc 7, then request 2 cores.
	s.TaskNew(10, 0, false, nil, nil)
	s.TaskNew(11, 0, false, nil, nil)
	s.ParseHint(RegisterActivation{ProcID: 7, PID: 10})
	s.ParseHint(RegisterActivation{ProcID: 7, PID: 11})
	s.ParseHint(CoreRequest{ProcID: 7, Cores: 2})

	if got := s.GrantedCores(7); got != 2 {
		t.Fatalf("granted = %d", got)
	}
	msgs := rq.Drain()
	if len(msgs) != 2 {
		t.Fatalf("grant messages = %d", len(msgs))
	}
	if g, ok := msgs[1].(GrantMsg); !ok || g.Cores != 2 {
		t.Fatalf("last grant = %+v", msgs[1])
	}

	// A waking activation gets routed to a granted core.
	target := s.SelectTaskRQ(10, 0, true)
	if target != 1 && target != 2 && target != 3 {
		t.Fatalf("activation routed to unmanaged core %d", target)
	}
}

func TestUngrantedActivationsShareCoreZero(t *testing.T) {
	s, _, _, _ := rig(t)
	s.TaskNew(10, 0, false, nil, nil)
	s.ParseHint(RegisterActivation{ProcID: 7, PID: 10})
	// No cores requested: activation lands on the unmanaged core.
	if got := s.SelectTaskRQ(10, 2, true); got != 0 {
		t.Fatalf("ungranted activation routed to %d, want shared core 0", got)
	}
}

func TestReclaimCollectsWhenParked(t *testing.T) {
	s, _, rq, _ := rig(t)
	s.TaskNew(10, 0, false, nil, nil)
	s.TaskNew(11, 0, false, nil, nil)
	s.ParseHint(RegisterActivation{ProcID: 7, PID: 10})
	s.ParseHint(RegisterActivation{ProcID: 7, PID: 11})
	s.ParseHint(CoreRequest{ProcID: 7, Cores: 2})
	// Bind both activations by waking them onto their cores.
	c1 := s.SelectTaskRQ(10, 0, true)
	s.TaskWakeup(10, 0, true, 0, c1, tok(10, c1, 1))
	c2 := s.SelectTaskRQ(11, 0, true)
	s.TaskWakeup(11, 0, true, 0, c2, tok(11, c2, 1))
	rq.Drain()

	// Shrink to 1 core: a reclaim message flows; nothing frees until an
	// activation parks.
	s.ParseHint(CoreRequest{ProcID: 7, Cores: 1})
	reclaims := 0
	for _, m := range rq.Drain() {
		if _, ok := m.(ReclaimMsg); ok {
			reclaims++
		}
	}
	if reclaims != 1 {
		t.Fatalf("reclaim messages = %d", reclaims)
	}
	if got := s.GrantedCores(7); got != 2 {
		t.Fatalf("core freed before the runtime parked: granted=%d", got)
	}
	// The runtime parks activation 11 (it blocks): the core frees.
	s.TaskBlocked(11, 0, c2)
	if got := s.GrantedCores(7); got != 1 {
		t.Fatalf("granted after park = %d, want 1", got)
	}
}

func TestReclaimCancelledOnReRequest(t *testing.T) {
	s, _, rq, _ := rig(t)
	s.TaskNew(10, 0, false, nil, nil)
	s.ParseHint(RegisterActivation{ProcID: 7, PID: 10})
	s.ParseHint(CoreRequest{ProcID: 7, Cores: 2})
	c1 := s.SelectTaskRQ(10, 0, true)
	s.TaskWakeup(10, 0, true, 0, c1, tok(10, c1, 1))
	rq.Drain()
	s.ParseHint(CoreRequest{ProcID: 7, Cores: 1}) // owe one back
	s.ParseHint(CoreRequest{ProcID: 7, Cores: 2}) // changed our mind
	// The cancel must be announced as a grant restoring the count.
	found := false
	for _, m := range rq.Drain() {
		if g, ok := m.(GrantMsg); ok && g.Cores == 2 {
			found = true
		}
	}
	if !found {
		t.Fatal("re-request did not cancel the owed reclaim")
	}
	if got := s.GrantedCores(7); got != 2 {
		t.Fatalf("granted = %d", got)
	}
}

func TestTwoProcsShareManagedCores(t *testing.T) {
	s, _, _, _ := rig(t)
	s.ParseHint(CoreRequest{ProcID: 1, Cores: 2})
	s.ParseHint(CoreRequest{ProcID: 2, Cores: 2})
	if a, b := s.GrantedCores(1), s.GrantedCores(2); a != 2 || b != 1 {
		t.Fatalf("grants = %d,%d; want first-come 2,1 of 3 managed", a, b)
	}
	// Proc 1 shrinks with nothing running: proc 2 gets the remainder.
	s.ParseHint(CoreRequest{ProcID: 1, Cores: 1})
	if a, b := s.GrantedCores(1), s.GrantedCores(2); a != 1 || b != 2 {
		t.Fatalf("after shrink = %d,%d", a, b)
	}
}

func TestEnterQueueDrainsHints(t *testing.T) {
	s, uq, _, _ := rig(t)
	uq.Push(CoreRequest{ProcID: 3, Cores: 1})
	uq.Push(RegisterActivation{ProcID: 3, PID: 55})
	s.EnterQueue(1, 2)
	if got := s.GrantedCores(3); got != 1 {
		t.Fatalf("hints not applied: granted=%d", got)
	}
}

func TestUpgradeCarriesQueuesAndState(t *testing.T) {
	s, _, _, env := rig(t)
	s.ParseHint(CoreRequest{ProcID: 7, Cores: 2})
	out := s.ReregisterPrepare()
	s2 := New(env, 1, []int{1, 2, 3})
	s2.ReregisterInit(&core.TransferIn{State: out.State})
	if got := s2.GrantedCores(7); got != 2 {
		t.Fatalf("grants lost across upgrade: %d", got)
	}
}
