// Locality hints: steer a scheduler from userspace (§3.3, §5.5).
//
// Two message threads each ping-pong with two workers. Without hints the
// locality scheduler places tasks randomly, so most wakeups hit cold remote
// cores and pay their C-state exit. With hints — sent through the Enoki
// hint queue as (task id, locality value) pairs — each group co-locates and
// wakeups cost a context switch. This regenerates the Table 6 contrast.
//
//	go run ./examples/locality-hints
package main

import (
	"fmt"
	"sort"
	"time"

	"enoki"
)

const (
	policyCFS      = 0
	policyLocality = 1
)

// group is one message thread plus its workers.
type group struct {
	msg       *enoki.Task
	workers   []*enoki.Task
	round     int
	responded int
}

func runBench(useHints bool) (p50, p99 time.Duration) {
	sys := enoki.NewSystem(enoki.WithMachine(enoki.Machine8()))
	ad, err := sys.Attach(policyLocality, enoki.GoModule(
		func(env enoki.Env) enoki.Scheduler { return enoki.NewLocalityScheduler(env, policyLocality) }))
	if err != nil {
		panic(err)
	}
	sys.RegisterCFS(policyCFS)
	k := sys.Kernel()

	var queue *enoki.UserQueue
	if useHints {
		queue = ad.CreateHintQueue(64)
	}

	var lats []time.Duration
	for g := 0; g < 2; g++ {
		grp := &group{}
		for w := 0; w < 2; w++ {
			seen := 0
			worker := k.Spawn("worker", policyLocality, enoki.BehaviorFunc(
				func(k *enoki.Kernel, t *enoki.Task) enoki.Action {
					if grp.round == seen {
						return enoki.Action{Op: enoki.OpBlock,
							Recheck: func() bool { return grp.round != seen }}
					}
					seen = grp.round
					grp.responded++
					var wake []*enoki.Task
					if grp.responded >= len(grp.workers) {
						wake = []*enoki.Task{grp.msg}
					}
					return enoki.Action{Run: 2 * time.Microsecond, Wake: wake, Op: enoki.OpBlock,
						Recheck: func() bool { return grp.round != seen }}
				}),
				enoki.WithWakeObserver(func(d time.Duration) { lats = append(lats, d) }))
			grp.workers = append(grp.workers, worker)
		}
		dispatched := false
		grp.msg = k.Spawn("msg", policyLocality, enoki.BehaviorFunc(
			func(k *enoki.Kernel, t *enoki.Task) enoki.Action {
				if dispatched {
					dispatched = false
					return enoki.Action{Op: enoki.OpBlock,
						Recheck: func() bool { return grp.responded >= len(grp.workers) }}
				}
				if grp.responded >= len(grp.workers) && grp.round > 0 {
					grp.responded = -1 << 20
					return enoki.Action{Op: enoki.OpSleep, SleepFor: 150 * time.Microsecond}
				}
				dispatched = true
				grp.responded = 0
				grp.round++
				return enoki.Action{Run: 2 * time.Microsecond, Wake: grp.workers, Op: enoki.OpContinue}
			}))
		if useHints {
			// Co-locate this message thread with its workers; each
			// group gets its own locality value → its own core.
			queue.Send(enoki.LocalityHint{PID: grp.msg.PID(), Locality: g + 1})
			for _, w := range grp.workers {
				queue.Send(enoki.LocalityHint{PID: w.PID(), Locality: g + 1})
			}
		}
	}
	k.RunFor(2 * time.Second)

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	if len(lats) == 0 {
		return 0, 0
	}
	return lats[len(lats)/2], lats[len(lats)*99/100]
}

func main() {
	rp50, rp99 := runBench(false)
	hp50, hp99 := runBench(true)
	fmt.Println("worker wakeup latency (2 message threads × 2 workers):")
	fmt.Printf("  random placement (no hints):  p50 %8v   p99 %8v\n", rp50, rp99)
	fmt.Printf("  with co-location hints:       p50 %8v   p99 %8v\n", hp50, hp99)
	fmt.Printf("hints cut the median wakeup by %.0fx by avoiding cold-core wakeups\n",
		float64(rp50)/float64(hp50))
}
