package main

import (
	"errors"
	"fmt"

	"enoki/internal/kernel"
)

// benchFlags is the parsed command line, normalized for validation. The
// *Set booleans record whether the user typed the flag (flag.Visit), so
// defaults never trip mode-specific rejections.
type benchFlags struct {
	Quick     bool
	Parallel  int
	BenchJSON bool
	Cluster   bool
	Fleet     bool
	Rollout   bool
	Overload  bool
	List      bool
	// MachineCPUs selects the per-machine topology of the fleet benchmark:
	// 8, 80, or 1000 CPUs.
	MachineCPUs int
	MachineSet  bool
	// Shards is the per-machine shard count: 0 picks one shard per NUMA
	// node; any explicit value must match the machine (shards are NUMA
	// nodes, like WithShards).
	Shards    int
	ShardsSet bool
	Args      []string
}

// machineFor maps the -machine flag to its topology.
func machineFor(cpus int) (kernel.Machine, bool) {
	switch cpus {
	case 8:
		return kernel.Machine8(), true
	case 80:
		return kernel.Machine80(), true
	case 1000:
		return kernel.Machine1000(), true
	}
	return kernel.Machine{}, false
}

// validate rejects incoherent flag combinations with a usage error before
// anything runs. The artifact modes (-benchjson, -cluster, -fleet,
// -rollout, -overload) are mutually exclusive, take at most one argument
// (the output path), and do not compose with the experiment-runner flags;
// -machine and -shards only parameterize -fleet, -rollout, and -overload,
// and a shard count can never exceed the machine's NUMA node count.
func validate(f benchFlags) error {
	mode := ""
	modes := 0
	for _, m := range []struct {
		on   bool
		name string
	}{{f.BenchJSON, "-benchjson"}, {f.Cluster, "-cluster"}, {f.Fleet, "-fleet"},
		{f.Rollout, "-rollout"}, {f.Overload, "-overload"}} {
		if m.on {
			mode = m.name
			modes++
		}
	}
	if modes > 1 {
		return errors.New("-benchjson, -cluster, -fleet, -rollout, and -overload are mutually exclusive")
	}
	if modes == 1 {
		if f.Quick {
			return fmt.Errorf("-quick applies to experiment runs, not %s", mode)
		}
		if f.Parallel != 1 {
			return fmt.Errorf("-parallel applies to experiment runs, not %s (the artifact modes fix their own drive)", mode)
		}
		if f.List {
			return fmt.Errorf("-list does not compose with %s", mode)
		}
		if len(f.Args) > 1 {
			return fmt.Errorf("%s takes at most one argument (the output file), got %d", mode, len(f.Args))
		}
	}
	if (f.MachineSet || f.ShardsSet) && !f.Fleet && !f.Rollout && !f.Overload {
		return errors.New("-machine and -shards parameterize -fleet, -rollout, and -overload only")
	}
	m, ok := machineFor(f.MachineCPUs)
	if !ok {
		return fmt.Errorf("-machine must be 8, 80, or 1000 (got %d)", f.MachineCPUs)
	}
	if f.Shards < 0 {
		return fmt.Errorf("-shards must be non-negative (got %d)", f.Shards)
	}
	if f.Shards > m.NumNodes {
		return fmt.Errorf("-shards %d exceeds the %d-CPU machine's %d NUMA nodes (shards are NUMA nodes)",
			f.Shards, m.NumCPUs, m.NumNodes)
	}
	if f.Shards != 0 && f.Shards != m.NumNodes {
		return fmt.Errorf("-shards %d does not match the %d-CPU machine's %d NUMA nodes (use 0 for auto)",
			f.Shards, m.NumCPUs, m.NumNodes)
	}
	if f.Parallel < 1 {
		return fmt.Errorf("-parallel must be at least 1 (got %d)", f.Parallel)
	}
	return nil
}
