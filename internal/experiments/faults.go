package experiments

import (
	"fmt"
	"time"

	"enoki/internal/core"
	"enoki/internal/enokic"
	"enoki/internal/kernel"
	"enoki/internal/sched/wfq"
	"enoki/internal/schedtest"
	"enoki/internal/sim"
	"enoki/internal/stats"
)

// FaultsRow is one fault-injection scenario's outcome.
type FaultsRow struct {
	Scenario  string
	Cause     string
	Migrated  int
	Downtime  time.Duration
	Completed int
	Total     int
	Makespan  time.Duration
}

// FaultsResult summarises the fault-isolation experiment: the same mixed
// workload run under a healthy WFQ module and under four sabotaged variants,
// each of which the framework must detect, kill, and survive by re-homing
// the workload to CFS.
type FaultsResult struct {
	Rows []FaultsRow
}

// Name implements the experiment naming convention.
func (r *FaultsResult) Name() string { return "faults" }

func (r *FaultsResult) String() string {
	t := stats.NewTable("Module fault", "Cause", "Rehomed", "Detect (ms)", "Done", "Makespan (ms)")
	for _, row := range r.Rows {
		t.Row(row.Scenario,
			row.Cause,
			fmt.Sprintf("%d", row.Migrated),
			fmt.Sprintf("%.2f", float64(row.Downtime)/float64(time.Millisecond)),
			fmt.Sprintf("%d/%d", row.Completed, row.Total),
			fmt.Sprintf("%.1f", float64(row.Makespan)/float64(time.Millisecond)))
	}
	return "Fault isolation: sabotaged WFQ modules killed, workload re-homed to CFS\n" +
		"(detect = watchdog/validation lag; synchronous trips detect in 0)\n" + t.String()
}

// faultScenario builds the wrapper for one sabotage mode (nil = healthy).
type faultScenario struct {
	name string
	wrap func(core.Scheduler) core.Scheduler
}

func faultScenarios() []faultScenario {
	return []faultScenario{
		{"healthy", nil},
		{"panicking", func(s core.Scheduler) core.Scheduler {
			return &schedtest.Panicky{Scheduler: s, PanicAfterPicks: 40}
		}},
		{"stalling", func(s core.Scheduler) core.Scheduler {
			return &schedtest.Staller{Scheduler: s, StallAfterPicks: 40}
		}},
		{"token-forging", func(s core.Scheduler) core.Scheduler {
			return &schedtest.Forger{Scheduler: s, ForgeAfterPicks: 40}
		}},
		{"wakeup-leaking", func(s core.Scheduler) core.Scheduler {
			return &schedtest.Leaker{Scheduler: s, DropEvery: 2}
		}},
	}
}

// Faults runs the fault-isolation experiment: every scenario runs the same
// mixed CPU-bound + sleep/wake workload to completion; a row survives when
// all its tasks finish even though the module died mid-run.
func Faults(o Options) *FaultsResult {
	scenarios := faultScenarios()
	spinners := scaleInt(o, 16, 8)
	sleepers := scaleInt(o, 8, 4)
	rows := make([]FaultsRow, len(scenarios))
	parDo(o, len(scenarios), func(i int) {
		rows[i] = runFaultCell(scenarios[i], spinners, sleepers)
	})
	return &FaultsResult{Rows: rows}
}

func runFaultCell(sc faultScenario, spinners, sleepers int) FaultsRow {
	eng := sim.New()
	k := kernel.New(eng, kernel.Machine8(), kernel.CostsFor(kernel.Machine8()))
	cfg := enokic.DefaultConfig()
	cfg.StarveWindow = 5 * time.Millisecond
	cfg.PntErrBudget = 3
	a := enokic.Load(k, PolicyEnoki, cfg, func(env core.Env) core.Scheduler {
		var s core.Scheduler = wfq.New(env, PolicyEnoki)
		if sc.wrap != nil {
			s = sc.wrap(s)
		}
		return s
	})
	k.RegisterClass(PolicyCFS, kernel.NewCFS(k))

	total := spinners + sleepers
	done := 0
	exit := kernel.WithExitObserver(func() { done++ })
	for i := 0; i < spinners; i++ {
		remaining := 20 * time.Millisecond
		k.Spawn("spin", PolicyEnoki, kernel.BehaviorFunc(
			func(k *kernel.Kernel, t *kernel.Task) kernel.Action {
				if remaining <= 0 {
					return kernel.Action{Op: kernel.OpExit}
				}
				remaining -= time.Millisecond
				return kernel.Action{Run: time.Millisecond, Op: kernel.OpContinue}
			}), exit)
	}
	for i := 0; i < sleepers; i++ {
		iters := 40
		k.Spawn("sleep", PolicyEnoki, kernel.BehaviorFunc(
			func(k *kernel.Kernel, t *kernel.Task) kernel.Action {
				iters--
				if iters < 0 {
					return kernel.Action{Op: kernel.OpExit}
				}
				return kernel.Action{Run: 200 * time.Microsecond, Op: kernel.OpSleep,
					SleepFor: 300 * time.Microsecond}
			}), exit)
	}
	k.RunFor(2 * time.Second)

	row := FaultsRow{
		Scenario:  sc.name,
		Cause:     "-",
		Completed: done,
		Total:     total,
		Makespan:  maxTaskFinish(k),
	}
	if rep := a.Failure(); rep != nil {
		row.Cause = rep.Fault.Cause.String()
		row.Migrated = rep.TasksMigrated
		row.Downtime = rep.Downtime
	}
	return row
}

// maxTaskFinish returns the time the machine last did work — with all tasks
// exited, the busiest CPU's busy time bounds the makespan.
func maxTaskFinish(k *kernel.Kernel) time.Duration {
	var max time.Duration
	for i := 0; i < k.NumCPUs(); i++ {
		if b := k.CPUBusy(i); b > max {
			max = b
		}
	}
	return max
}
