package enoki

import (
	"fmt"
	"time"

	"enoki/internal/cluster"
	"enoki/internal/enokic"
	"enoki/internal/overload"
	"enoki/internal/workload/traffic"
)

// The overload-control plane: per-class admission with zero-alloc load
// shedding, bounded retry-with-backoff, and brownout graceful degradation
// entered and exited by hysteresis on sampled queue depth. The plane sits
// at ingress — a traffic driver or the cluster's Offer front door calls
// Admit before any task is spawned — never in the kernel's pick path, and
// its accounting obeys a conservation invariant the chaos oracle enforces:
// Offered == Admitted + Shed and Shed == Retried + Dropped per class.

// AdmissionClass parameterizes one admission class: its inflight ceiling,
// retry budget and backoff, and the brownout hysteresis thresholds on the
// mapped scheduler class's queue depth.
type AdmissionClass = overload.ClassConfig

// AdmissionController is one admission/brownout control plane. Not
// goroutine-safe: sharded rigs give each shard its own controller and
// merge counters afterwards, which is also what keeps serial and parallel
// drives byte-identical.
type AdmissionController = overload.Controller

// AdmissionVerdict is Admit's resolution of one offered attempt.
type AdmissionVerdict = overload.Verdict

// Admission verdicts.
const (
	// AdmissionAdmitted: run it; the caller owes one Done.
	AdmissionAdmitted = overload.Admitted
	// AdmissionRetry: shed, re-offer after Backoff(class, attempt).
	AdmissionRetry = overload.Retry
	// AdmissionDropped: shed with the retry budget exhausted. Terminal.
	AdmissionDropped = overload.Dropped
)

// AdmissionCounters is one class's (or a merged total's) accounting
// snapshot; the conservation invariant must hold over it at all times.
type AdmissionCounters = overload.Counters

// The traffic plane: a deterministic open-loop scenario engine — diurnal
// curves with regional offsets, flash crowds, antagonist multi-tenancy,
// connection churn, and nginx-style request fanout — driving a System
// (DriveTraffic) or a Cluster (NewTrafficFleetDriver) through the
// admission plane.

// TrafficScenario is one deterministic open-loop traffic plan.
type TrafficScenario = traffic.Scenario

// TrafficClass is one request class of a scenario.
type TrafficClass = traffic.Class

// TrafficRegion is one arrival region: a share of global traffic with a
// diurnal phase offset. In sharded rigs regions partition across shards.
type TrafficRegion = traffic.Region

// TrafficShape is one traffic distortion window.
type TrafficShape = traffic.Shape

// TrafficShapeKind selects one adversarial traffic shape.
type TrafficShapeKind = traffic.ShapeKind

// Traffic shapes.
const (
	// TrafficFlash is a flash crowd: the class's arrival rate multiplies
	// inside the window.
	TrafficFlash = traffic.Flash
	// TrafficAntagonist is noisy-neighbor multi-tenancy: the antagonist
	// class's rate multiplies, crowding the victims.
	TrafficAntagonist = traffic.Antagonist
	// TrafficChurn is a connection-churn storm: every connection opened
	// inside the window issues a single request and closes.
	TrafficChurn = traffic.Churn
)

// TrafficDriver generates one scenario partition open-loop against one
// kernel shard; System.DriveTraffic assembles one per shard.
type TrafficDriver = traffic.Driver

// TrafficDriverConfig wires one TrafficDriver to its kernel shard.
type TrafficDriverConfig = traffic.DriverConfig

// TrafficReport is the merged outcome of one scenario drive, admission
// accounting and brownout episodes included.
type TrafficReport = traffic.Report

// TrafficClassReport is one request class's merged measurement.
type TrafficClassReport = traffic.ClassReport

// TrafficFleetDriver drives a scenario against a Cluster's Offer front
// door: arrivals become cluster jobs, shed arrivals cost nothing.
type TrafficFleetDriver = traffic.FleetDriver

// NewTrafficDriver builds a driver for one kernel shard; most rigs want
// System.DriveTraffic instead.
func NewTrafficDriver(k *Kernel, sc TrafficScenario, dc TrafficDriverConfig) *TrafficDriver {
	return traffic.NewDriver(k, sc, dc)
}

// NewTrafficFleetDriver builds a fleet driver for a cluster constructed
// with WithClusterAdmission. Call Start, run the cluster, then read
// Counters and CheckConservation.
func NewTrafficFleetDriver(cl *Cluster, sc TrafficScenario) *TrafficFleetDriver {
	return traffic.NewFleetDriver(cl, sc)
}

// CollectTraffic merges the drivers of one drive (one per shard) into a
// TrafficReport and runs the conservation check; the rig must be drained
// first.
func CollectTraffic(ds ...*TrafficDriver) TrafficReport {
	return traffic.Collect(ds...)
}

// trafficSampleEvery is DriveTraffic's brownout sampler period.
const trafficSampleEvery = 250 * time.Microsecond

// WithAdmission installs the overload-control plane on the System: one
// AdmissionController per shard (class indexes follow the argument
// order), read back with AdmissionController and driven by DriveTraffic
// or by calling Admit/Done at ingress by hand.
func WithAdmission(classes ...AdmissionClass) Option {
	return func(o *options) { o.admission = classes }
}

// WithBrownout sets the brownout hysteresis thresholds of admission class
// (by WithAdmission index): the mapped scheduler class degrades when its
// sampled queue depth reaches enterDepth and recovers at exitDepth.
// Requires WithAdmission; NewSystem panics on an unknown class index.
func WithBrownout(class, enterDepth, exitDepth int) Option {
	return func(o *options) {
		o.brownouts = append(o.brownouts, brownoutOpt{class, enterDepth, exitDepth})
	}
}

type brownoutOpt struct {
	class, enter, exit int
}

// AdmissionController returns shard i's admission controller, or nil when
// the System was built without WithAdmission.
func (s *System) AdmissionController(i int) *AdmissionController {
	if s.adm == nil {
		return nil
	}
	return s.adm[i]
}

// DriveTraffic runs one open-loop traffic scenario against the System
// through its admission plane (WithAdmission required): one driver per
// shard generates the scenario's arrivals, every arrival passes Admit
// before any task spawns, brownout state changes are delivered to the
// adapters of the classes' scheduler policies, and the merged report —
// latency histograms, admission accounting, conservation violations,
// brownout episodes — comes back after the run.
//
// The engine advances by the scenario's Duration plus drain, so admitted
// work outlives the last arrival; size drain generously (admitted
// requests still in flight at collection are conservation violations).
// Each call consumes the scenario once — counters accumulate in the
// controllers, so use a fresh System per scenario for isolated reports.
func (s *System) DriveTraffic(sc TrafficScenario, drain time.Duration) TrafficReport {
	if s.adm == nil {
		panic("enoki: DriveTraffic requires WithAdmission")
	}
	if s.closed {
		panic("enoki: DriveTraffic on a closed System")
	}
	n := s.NumShards()
	ds := make([]*TrafficDriver, n)
	for i := 0; i < n; i++ {
		k := s.ShardKernel(i)
		ads := make(map[int]*enokic.Adapter)
		for _, a := range s.adapters {
			if a.Kernel() == k {
				ads[a.Policy()] = a
			}
		}
		ds[i] = traffic.NewDriver(k, sc, traffic.DriverConfig{
			Controller:  s.adm[i],
			Adapters:    ads,
			Shard:       i,
			Shards:      n,
			SampleEvery: trafficSampleEvery,
		})
		ds[i].Start()
	}
	s.Run(sc.Duration + drain)
	return traffic.Collect(ds...)
}

// buildAdmission constructs the per-shard controllers from the collected
// options; called by NewSystem.
func buildAdmission(o *options, shards int) []*overload.Controller {
	if len(o.admission) == 0 {
		if len(o.brownouts) > 0 {
			panic("enoki: WithBrownout requires WithAdmission")
		}
		return nil
	}
	classes := make([]AdmissionClass, len(o.admission))
	copy(classes, o.admission)
	for _, b := range o.brownouts {
		if b.class < 0 || b.class >= len(classes) {
			panic(fmt.Sprintf("enoki: WithBrownout(%d, ...) with %d admission classes", b.class, len(classes)))
		}
		classes[b.class].EnterDepth = b.enter
		classes[b.class].ExitDepth = b.exit
	}
	adm := make([]*overload.Controller, shards)
	for i := range adm {
		adm[i] = overload.New(overload.Config{Classes: classes})
	}
	return adm
}

// WithClusterAdmission installs the overload-control plane on a Cluster's
// job front door: jobs submitted through Cluster.Offer pass Admit first
// (shed jobs cost nothing, retries re-offer after backoff), while Submit
// bypasses admission. Read the controller back with Cluster.Overload.
func WithClusterAdmission(classes ...AdmissionClass) ClusterOption {
	return func(c *cluster.Config) { c.Admission = classes }
}
