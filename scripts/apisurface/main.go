// Command apisurface prints the exported API surface of one Go package as a
// sorted, one-line-per-symbol listing. scripts/apicheck.sh diffs its output
// against the committed baseline (api/enoki.txt) so incompatible changes to
// package enoki fail CI unless deliberately allowlisted.
//
// It is intentionally syntactic (go/parser, no type checking) and
// dependency-free: the richer golang.org/x/exp/apidiff gate is optional and
// this tool is the fallback that always works with a bare toolchain.
//
//	go run ./scripts/apisurface [dir]
//
// Output lines:
//
//	const Name
//	var Name type
//	type Name = alias-target
//	type Name struct { ExportedField T; ... }
//	func Name(args) results
//	method (Recv) Name(args) results
package main

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	dir := "."
	if len(os.Args) > 1 {
		dir = os.Args[1]
	}
	lines, err := surface(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "apisurface: %v\n", err)
		os.Exit(1)
	}
	for _, l := range lines {
		fmt.Println(l)
	}
}

func surface(dir string) ([]string, error) {
	fset := token.NewFileSet()
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	var lines []string
	for _, name := range names {
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, 0)
		if err != nil {
			return nil, err
		}
		for _, decl := range f.Decls {
			lines = append(lines, declLines(fset, decl)...)
		}
	}
	sort.Strings(lines)
	return lines, nil
}

// declLines renders the exported symbols of one top-level declaration.
func declLines(fset *token.FileSet, decl ast.Decl) []string {
	var out []string
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() {
			return nil
		}
		if d.Recv != nil {
			recv := render(fset, d.Recv.List[0].Type)
			if !ast.IsExported(strings.TrimLeft(recv, "*")) {
				return nil
			}
			out = append(out, fmt.Sprintf("method (%s) %s%s",
				recv, d.Name.Name, sigString(fset, d.Type)))
		} else {
			out = append(out, fmt.Sprintf("func %s%s", d.Name.Name, sigString(fset, d.Type)))
		}
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.ValueSpec:
				kw := "const"
				if d.Tok == token.VAR {
					kw = "var"
				}
				for _, n := range s.Names {
					if !n.IsExported() {
						continue
					}
					line := kw + " " + n.Name
					if s.Type != nil {
						line += " " + render(fset, s.Type)
					}
					out = append(out, line)
				}
			case *ast.TypeSpec:
				if !s.Name.IsExported() {
					continue
				}
				eq := " "
				if s.Assign.IsValid() {
					eq = " = "
				}
				out = append(out, "type "+s.Name.Name+eq+render(fset, exportedOnly(s.Type)))
			}
		}
	}
	return out
}

// sigString renders a function signature without the leading "func".
func sigString(fset *token.FileSet, t *ast.FuncType) string {
	return strings.TrimPrefix(render(fset, t), "func")
}

// exportedOnly strips unexported members from struct and interface bodies so
// internal layout changes don't churn the baseline.
func exportedOnly(t ast.Expr) ast.Expr {
	switch tt := t.(type) {
	case *ast.StructType:
		return &ast.StructType{Fields: exportedFields(tt.Fields, false)}
	case *ast.InterfaceType:
		return &ast.InterfaceType{Methods: exportedFields(tt.Methods, true)}
	}
	return t
}

func exportedFields(fl *ast.FieldList, iface bool) *ast.FieldList {
	if fl == nil {
		return nil
	}
	kept := &ast.FieldList{}
	for _, f := range fl.List {
		if len(f.Names) == 0 {
			// Embedded field or interface embedding: keep when the terminal
			// identifier is exported.
			name := strings.TrimLeft(renderNoPos(f.Type), "*")
			if i := strings.LastIndex(name, "."); i >= 0 {
				name = name[i+1:]
			}
			if ast.IsExported(name) {
				kept.List = append(kept.List, f)
			}
			continue
		}
		var names []*ast.Ident
		for _, n := range f.Names {
			if n.IsExported() {
				names = append(names, n)
			}
		}
		if len(names) > 0 {
			kept.List = append(kept.List, &ast.Field{Names: names, Type: f.Type})
		}
	}
	return kept
}

// render pretty-prints a node and collapses it onto one line.
func render(fset *token.FileSet, node any) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, node); err != nil {
		return fmt.Sprintf("<%v>", err)
	}
	return strings.Join(strings.Fields(buf.String()), " ")
}

func renderNoPos(node any) string {
	return render(token.NewFileSet(), node)
}
