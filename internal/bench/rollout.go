// Fleet-rollout benchmark: the canary-upgrade artifact. The same
// thousand-machine fleet the fleet benchmark drives is upgraded to a new
// module generation through the cluster rollout orchestrator, twice over:
// a clean campaign that must converge wave by wave onto the whole fleet,
// and a sabotaged campaign — the new generation panics in init above a
// machine threshold — that must halt at the canary wave which hits the
// faulty region and roll every already-upgraded machine back. Each variant
// runs serially and on worker goroutines and must fingerprint identically,
// so the artifact's verdicts cover the rollout contract end to end:
// convergence, halt correctness, rollback completeness, and determinism.
// A fifth verdict replays the pinned chaos schedule, proving a seeded
// faulty campaign reproduces bit-for-bit from its one-line `r1:` spec.
package bench

import (
	"fmt"
	"hash/fnv"
	"reflect"
	"runtime"
	"time"

	"enoki/internal/chaos"
	"enoki/internal/cluster"
	"enoki/internal/core"
	"enoki/internal/enokic"
	"enoki/internal/kernel"
	"enoki/internal/ktime"
	"enoki/internal/schedtest"
	"enoki/internal/schedtest/conformance"
)

const (
	// rolloutClass is the conformance scheduler class every machine loads as
	// its upgradable module; the rollout ships a fresh generation of it.
	rolloutClass = "wfq"
	// rolloutVersion names the generation being rolled out.
	rolloutVersion = "v2"
	// rolloutBudget is the fixed virtual budget of one drive: an order of
	// magnitude past the wave span, so an unresolved rollout is a verdict
	// failure, not a hang.
	rolloutBudget = 40 * time.Millisecond
	// rolloutReplaySpec is the pinned chaos schedule (two machine kills plus
	// a faulty generation, drawn from seed 9) whose replay the artifact
	// re-verifies on every run. The string is the entire reproducer.
	rolloutReplaySpec = "r1:wfq:9:7"
)

// RolloutBenchResult is the rollout section of BENCH_cluster.json.
type RolloutBenchResult struct {
	Machines    int    `json:"machines"`
	MachineCPUs int    `json:"machine_cpus"`
	Shards      int    `json:"shards_per_machine"`
	Jobs        int    `json:"jobs"`
	Class       string `json:"class"`
	Version     string `json:"version"`
	Previous    string `json:"previous"`
	FaultyFrom  int    `json:"faulty_from"` // faulty generation on machines >= this id

	Targets    int `json:"targets"`
	Canary     int `json:"canary"`
	CleanWaves int `json:"clean_waves"`

	WallCleanSerialMS    float64 `json:"wall_clean_serial_ms"`
	WallCleanParallelMS  float64 `json:"wall_clean_parallel_ms"`
	WallFaultySerialMS   float64 `json:"wall_faulty_serial_ms"`
	WallFaultyParallelMS float64 `json:"wall_faulty_parallel_ms"`

	FaultyHaltedWave   int `json:"faulty_halted_wave"`
	FaultyRolledBack   int `json:"faulty_rolled_back"`
	FaultyRollbackErrs int `json:"faulty_rollback_errs"`
	FaultyDead         int `json:"faulty_dead"`

	FingerprintCleanSerial    string `json:"fingerprint_clean_serial"`
	FingerprintCleanParallel  string `json:"fingerprint_clean_parallel"`
	FingerprintFaultySerial   string `json:"fingerprint_faulty_serial"`
	FingerprintFaultyParallel string `json:"fingerprint_faulty_parallel"`

	ReplaySpec   string   `json:"replay_spec"`
	ReplayEvents []string `json:"replay_events"`

	GOMAXPROCS int        `json:"gomaxprocs"`
	SLOs       []FleetSLO `json:"slos"`
	Pass       bool       `json:"pass"`
}

// rolloutDriveOut is one rollout drive's observable outcome.
type rolloutDriveOut struct {
	stats    cluster.Stats
	report   cluster.RolloutReport
	resolved bool
	onNew    int // live shards of alive machines serving the new generation at the end
	fp       uint64
	wall     time.Duration
}

// rolloutScale mirrors fleetScale: the 8-CPU headline is 1,000 machines;
// bigger per-machine templates narrow the fleet. Jobs keep every soak
// window under live load without dominating the wall clock.
func rolloutScale(m kernel.Machine) (machines, jobs int) {
	switch {
	case m.NumCPUs >= 1000:
		return 12, 720
	case m.NumCPUs >= 80:
		return 120, 7200
	default:
		return 1000, 60000
	}
}

// rolloutDrive runs one canary rollout over a seeded fleet workload.
// Machines at or above faultyFrom get a new generation that panics in init
// (faultyFrom >= machines means a clean campaign). The fingerprint folds
// per-machine counters, adapter versions, the rollout report, and every
// job's final control-plane record, so two drives agree on it only if they
// agree on the whole history.
func rolloutDrive(m kernel.Machine, machines, jobs, faultyFrom int, parallel bool) rolloutDriveOut {
	var cs conformance.Case
	for _, c := range conformance.Cases() {
		if c.Name == rolloutClass {
			cs = c
		}
	}
	if cs.NewModule == nil {
		panic(fmt.Sprintf("bench: conformance class %q has no upgradable module", rolloutClass))
	}
	cl := cluster.New(cluster.Config{
		Machines: machines,
		Machine:  m,
		Parallel: parallel,
		Policy:   conformance.PolicyTest,
		Placer:   cluster.LeastLoaded{},
		SetupModules: func(mi int, sk *kernel.ShardedKernel) []*enokic.Adapter {
			ads := make([]*enokic.Adapter, sk.NumShards())
			for s := 0; s < sk.NumShards(); s++ {
				k := sk.ShardKernel(s)
				ads[s] = enokic.Load(k, conformance.PolicyTest, enokic.DefaultConfig(),
					func(env core.Env) core.Scheduler { return cs.NewModule(env, k.NumCPUs()) })
				k.RegisterClass(conformance.PolicyCFS, kernel.NewCFS(k))
			}
			return ads
		},
	})
	defer cl.Close()

	rng := ktime.NewRand(0x5011ed70)
	for i := 0; i < jobs; i++ {
		cl.Submit(cluster.JobSpec{
			Cycles: 2 + rng.Intn(4),
			Run:    time.Duration(100+rng.Intn(200)) * time.Microsecond,
			Sleep:  time.Duration(rng.Intn(2)) * 200 * time.Microsecond,
		})
	}
	factory := func(mi int, env core.Env) core.Scheduler {
		sched := cs.NewModule(env, env.NumCPUs())
		if mi >= faultyFrom {
			return &schedtest.Injector{Scheduler: sched, PanicInInit: true}
		}
		return sched
	}
	ro, err := cl.Rollout(rolloutVersion, factory)
	if err != nil {
		panic(fmt.Sprintf("bench: StartRollout: %v", err))
	}
	start := time.Now()
	cl.Run(rolloutBudget)
	wall := time.Since(start)

	out := rolloutDriveOut{
		stats: cl.Stats(), resolved: ro.Done(),
		report: ro.Report(), wall: wall,
	}
	views := cl.Views()
	h := fnv.New64a()
	word := func(v uint64) {
		var b [8]byte
		for i := 0; i < 8; i++ {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	for i := 0; i < cl.NumMachines(); i++ {
		mc := cl.Machine(i)
		sk := mc.Sharded()
		word(mc.TasksSpawned())
		word(sk.CtxSwitches())
		word(sk.EventsFired())
		word(sk.Wakeups())
		word(uint64(sk.Now()))
		for _, ad := range mc.Adapters() {
			if ad == nil {
				continue
			}
			h.Write([]byte(ad.Version()))
			killed := uint64(0)
			if ad.Killed() {
				killed = 1
			}
			word(killed)
			if views[i].Alive && !ad.Killed() && ad.Version() == rolloutVersion {
				out.onNew++
			}
		}
	}
	for i := 0; i < cl.NumJobs(); i++ {
		j := cl.Job(i)
		word(uint64(j.State))
		word(uint64(int64(j.Machine)))
		word(uint64(j.Restarts)<<32 | uint64(j.Migrations))
		word(uint64(j.DoneAt))
	}
	h.Write([]byte(fmt.Sprintf("%+v", out.report)))
	out.fp = h.Sum64()
	return out
}

// RunRollout runs the rollout benchmark on the given per-machine template
// and assembles the verdicts.
func RunRollout(m kernel.Machine) *RolloutBenchResult {
	machines, jobs := rolloutScale(m)
	// The faulty generation starts a quarter of the way into the fleet: the
	// canary and at least one widening wave land clean before a wave crosses
	// the threshold, so the halt exercises rollback of genuinely upgraded
	// machines, not just the aborted wave.
	faultyFrom := machines / 4

	cleanS := rolloutDrive(m, machines, jobs, machines, false)
	cleanP := rolloutDrive(m, machines, jobs, machines, true)
	faultS := rolloutDrive(m, machines, jobs, faultyFrom, false)
	faultP := rolloutDrive(m, machines, jobs, faultyFrom, true)

	shards := 0
	if n := kernel.NewShardedKernel(m, kernel.CostsFor(m), 0); n != nil {
		shards = n.NumShards()
		n.Close()
	}
	r := &RolloutBenchResult{
		Machines: machines, MachineCPUs: m.NumCPUs, Shards: shards, Jobs: jobs,
		Class: rolloutClass, Version: rolloutVersion, Previous: cleanS.report.Previous,
		FaultyFrom: faultyFrom,
		Targets:    cleanS.report.Targets, Canary: cleanS.report.Canary,
		CleanWaves:                len(cleanS.report.Waves),
		WallCleanSerialMS:         float64(cleanS.wall) / float64(time.Millisecond),
		WallCleanParallelMS:       float64(cleanP.wall) / float64(time.Millisecond),
		WallFaultySerialMS:        float64(faultS.wall) / float64(time.Millisecond),
		WallFaultyParallelMS:      float64(faultP.wall) / float64(time.Millisecond),
		FaultyHaltedWave:          faultS.report.HaltedWave,
		FaultyRolledBack:          faultS.report.RolledBack,
		FaultyRollbackErrs:        faultS.report.RollbackErrs,
		FaultyDead:                faultS.report.Dead,
		FingerprintCleanSerial:    fmt.Sprintf("%016x", cleanS.fp),
		FingerprintCleanParallel:  fmt.Sprintf("%016x", cleanP.fp),
		FingerprintFaultySerial:   fmt.Sprintf("%016x", faultS.fp),
		FingerprintFaultyParallel: fmt.Sprintf("%016x", faultP.fp),
		ReplaySpec:                rolloutReplaySpec,
		GOMAXPROCS:                runtime.GOMAXPROCS(0),
	}
	slo := func(name, target, measured string, pass bool) {
		r.SLOs = append(r.SLOs, FleetSLO{Name: name, Target: target, Measured: measured, Pass: pass})
	}

	cr := cleanS.report
	slo("convergence", "clean rollout upgrades the whole fleet and completes",
		fmt.Sprintf("%d/%d machines healthy on %s in %d waves (resolved=%v)",
			cr.Upgraded, cr.Targets, rolloutVersion, len(cr.Waves), cleanS.resolved),
		cleanS.resolved && cr.Completed && !cr.Halted && cr.Upgraded == cr.Targets &&
			cleanS.onNew > 0)

	fr := faultS.report
	// The faulty region begins at faultyFrom, so every wave that stays below
	// it must pass and the first wave that crosses it must trip the halt.
	upgradedBeforeHalt := 0
	for _, w := range fr.Waves[:max(len(fr.Waves)-1, 0)] {
		upgradedBeforeHalt += len(w.Machines)
	}
	slo("canary_halt", "faulty generation halts the rollout at the wave that hits it",
		fmt.Sprintf("halted=%v wave=%d after %d clean upgrades (resolved=%v)",
			fr.Halted, fr.HaltedWave, upgradedBeforeHalt, faultS.resolved),
		faultS.resolved && fr.Halted && !fr.Completed && fr.HaltedWave >= 1 &&
			upgradedBeforeHalt > 0)

	slo("rollback", "halt restores every upgraded machine to the previous generation",
		fmt.Sprintf("%d rolled back (%d errs), %d shards left on %s, upgraded=%d",
			fr.RolledBack, fr.RollbackErrs, faultS.onNew, rolloutVersion, fr.Upgraded),
		faultS.resolved && fr.Upgraded == 0 && fr.RollbackErrs == 0 &&
			fr.RolledBack >= upgradedBeforeHalt && faultS.onNew == 0)

	slo("determinism", "serial and parallel drives fingerprint identically (clean and faulty)",
		fmt.Sprintf("clean %016x vs %016x, faulty %016x vs %016x",
			cleanS.fp, cleanP.fp, faultS.fp, faultP.fp),
		cleanS.fp == cleanP.fp && faultS.fp == faultP.fp)

	// The replay verdict: the pinned one-line spec regenerates its fault
	// plan, the campaign upholds every chaos-oracle invariant, and the
	// serial and parallel replays agree on the full rollout report.
	replayPass := false
	replayMeasured := ""
	if sched, err := chaos.ParseRolloutSpec(rolloutReplaySpec); err != nil {
		replayMeasured = fmt.Sprintf("spec does not parse: %v", err)
	} else {
		for _, ev := range sched.Enabled() {
			r.ReplayEvents = append(r.ReplayEvents, ev.String())
		}
		repS := chaos.RolloutCampaign(sched, chaos.RolloutRunConfig{})
		repP := chaos.RolloutCampaign(sched, chaos.RolloutRunConfig{Parallel: true})
		replayPass = len(repS.Violations) == 0 && len(repP.Violations) == 0 &&
			repS.Resolved && reflect.DeepEqual(repS.Report, repP.Report) &&
			repS.Report.Halted && repS.Report.RolledBack > 0 && repS.Report.Dead > 0
		replayMeasured = fmt.Sprintf(
			"%d events, %d+%d violations, halted=%v rolledback=%d dead=%d, reports identical=%v",
			len(r.ReplayEvents), len(repS.Violations), len(repP.Violations),
			repS.Report.Halted, repS.Report.RolledBack, repS.Report.Dead,
			reflect.DeepEqual(repS.Report, repP.Report))
	}
	slo("replay", fmt.Sprintf("seeded faulty campaign %q replays clean from its one-line spec", rolloutReplaySpec),
		replayMeasured, replayPass)

	r.Pass = true
	for _, s := range r.SLOs {
		r.Pass = r.Pass && s.Pass
	}
	return r
}

// WriteRolloutJSON runs the cluster sweep, the fleet benchmark, and the
// rollout benchmark — the full BENCH_cluster.json document — and writes it
// to path.
func WriteRolloutJSON(path string, m kernel.Machine) (*ClusterOutput, error) {
	out := RunCluster()
	out.Fleet = RunFleet(m)
	out.Rollout = RunRollout(m)
	return writeClusterDoc(path, out)
}
