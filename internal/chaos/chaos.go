// Package chaos is the deterministic chaos engine: it composes the repo's
// fault planes — module panics at any trait-call site, hint-ring overflow
// storms, IPI drop/delay/duplication, timer skew, live-upgrade faults and
// kills — into seeded campaigns over every scheduler class, judges each run
// with an always-on invariant oracle, and shrinks a failing run's fault
// schedule to a minimal reproducer replayable from a one-line spec string.
//
// The design follows the FoundationDB/Jepsen school of simulation testing,
// adapted to the repo's discrete-event kernel: because the simulator is
// single-threaded over virtual time and every fault trigger is a seeded
// draw, a call count, or a virtual timestamp, a failing seed is not a flaky
// artifact but a permanent, bit-for-bit reproducible program input. The
// campaign explores; the spec string (`v1:<class>:<seed>:<mask>`) replays;
// the minimizer (ddmin over the event mask) keeps only the fault events the
// failure actually needs.
package chaos

import (
	"fmt"
	"time"

	"enoki/internal/core"
	"enoki/internal/ktime"
)

// Plane identifies one fault family a chaos event belongs to. Planes are
// split by *who* they sabotage: module planes corrupt the scheduler module
// behind the trait boundary (the fault layer may legitimately kill for
// these), upgrade planes break the live-upgrade transaction (which must
// roll back, never kill), and kernel planes degrade the machine itself
// (IPIs, timers — a correct stack must survive them outright).
type Plane uint8

// Fault planes.
const (
	// PlanePanic arms a panic inside one trait call after a fixed number
	// of calls of that kind (Site, Count).
	PlanePanic Plane = iota
	// PlaneStall makes every pick return nil during [At, At+Dur) — Dur 0
	// is a permanent stall, the starvation the watchdog must catch.
	PlaneStall
	// PlaneForge corrupts Count returned Schedulables starting at pick
	// number Mag, exercising proof-of-runnability validation.
	PlaneForge
	// PlaneHintStorm pushes Count hints at time At into a deliberately
	// tiny hint ring, forcing overflow drops the accounting must surface.
	PlaneHintStorm
	// PlaneIPIDrop delays every kick in [At, At+Dur) by the recovery bound
	// Mag — a lost resched IPI noticed at the next tick.
	PlaneIPIDrop
	// PlaneIPIDelay adds a seeded random delay in [0, Mag) to every kick
	// in the window.
	PlaneIPIDelay
	// PlaneIPIDup delivers a duplicate kick Mag after every kick in the
	// window — the spurious IPI a correct scheduler treats as a no-op.
	PlaneIPIDup
	// PlaneTimerSkew lengthens every reschedule-timer arm in the window by
	// a seeded random skew in [0, Mag) — a coarse, drifting clock.
	PlaneTimerSkew
	// PlaneUpgrade performs a clean live upgrade to a fresh module of the
	// same class at time At; it must complete without rollback or kill.
	PlaneUpgrade
	// PlaneUpgradeKill performs a live upgrade whose new version panics in
	// reregister_init at time At: the transactional upgrade path must roll
	// back to the old module — killing the class here is the bug the
	// rollback layer exists to prevent.
	PlaneUpgradeKill
	// PlaneMachineKill fail-stops a whole simulated machine in a fleet
	// campaign (see fleet.go): the cluster control plane must detect the
	// death and restart every placement the machine held elsewhere. Fleet
	// schedules (`f1:` specs) use this plane exclusively; it never appears
	// in a single-machine schedule.
	PlaneMachineKill
	// PlaneRolloutKill fail-stops a machine while a fleet rollout is in
	// flight (see rollout.go): the control plane must resolve the
	// machine's rollout slot through the death path instead of leaving
	// the wave barrier waiting forever. Rollout schedules (`r1:` specs)
	// use the three rollout planes exclusively.
	PlaneRolloutKill
	// PlaneRolloutFaulty makes the rollout's new module generation panic
	// in reregister_init on every machine id >= Threshold: the canary (or
	// a later wave) must fail its verdict, halting the rollout and
	// rolling the whole fleet back.
	PlaneRolloutFaulty
	// PlaneRolloutDelayDetect stretches the cluster's failure-detection
	// delay, widening the window in which a dead machine's rollout slot
	// is unresolved.
	PlaneRolloutDelayDetect
	// PlaneTrafficFlash multiplies the service class's arrival rate by
	// Count inside [At, At+Dur) — a flash crowd at the front door. Traffic
	// schedules (`t1:` specs, see traffic.go) mix the three traffic planes
	// with module and kernel fault planes: overload control must shed,
	// brown out, and recover while the fault planes sabotage the module.
	PlaneTrafficFlash
	// PlaneTrafficAntag multiplies the background class's rate by Count in
	// the window — the noisy neighbor crowding the service class.
	PlaneTrafficAntag
	// PlaneTrafficChurn is a connection-churn storm: every connection
	// opened in the window issues a single request and closes.
	PlaneTrafficChurn

	numPlanes
)

func (p Plane) String() string {
	switch p {
	case PlanePanic:
		return "panic"
	case PlaneStall:
		return "stall"
	case PlaneForge:
		return "forge"
	case PlaneHintStorm:
		return "hint-storm"
	case PlaneIPIDrop:
		return "ipi-drop"
	case PlaneIPIDelay:
		return "ipi-delay"
	case PlaneIPIDup:
		return "ipi-dup"
	case PlaneTimerSkew:
		return "timer-skew"
	case PlaneUpgrade:
		return "upgrade"
	case PlaneUpgradeKill:
		return "upgrade-kill"
	case PlaneMachineKill:
		return "machine-kill"
	case PlaneRolloutKill:
		return "rollout-kill"
	case PlaneRolloutFaulty:
		return "rollout-faulty"
	case PlaneRolloutDelayDetect:
		return "rollout-delay-detect"
	case PlaneTrafficFlash:
		return "traffic-flash"
	case PlaneTrafficAntag:
		return "traffic-antagonist"
	case PlaneTrafficChurn:
		return "traffic-churn"
	default:
		return "invalid"
	}
}

// Event is one fault in a schedule. Field meaning is plane-specific (see the
// Plane constants): At/Dur bound a virtual-time window (ns), Site names a
// trait call for PlanePanic, Count is a call index or volume, and Mag is a
// magnitude in ns (delays, skews) or a pick index (forge start).
type Event struct {
	Plane Plane
	At    int64
	Dur   int64
	Site  core.Kind
	Count int
	Mag   int64
}

func (e Event) String() string {
	switch e.Plane {
	case PlanePanic:
		return fmt.Sprintf("panic[%v@call%d]", e.Site, e.Count)
	case PlaneStall:
		if e.Dur == 0 {
			return fmt.Sprintf("stall[%v..∞]", time.Duration(e.At))
		}
		return fmt.Sprintf("stall[%v+%v]", time.Duration(e.At), time.Duration(e.Dur))
	case PlaneForge:
		return fmt.Sprintf("forge[%d@pick%d]", e.Count, e.Mag)
	case PlaneHintStorm:
		return fmt.Sprintf("hint-storm[%d@%v]", e.Count, time.Duration(e.At))
	case PlaneUpgrade, PlaneUpgradeKill:
		return fmt.Sprintf("%v[@%v]", e.Plane, time.Duration(e.At))
	case PlaneTrafficFlash, PlaneTrafficAntag, PlaneTrafficChurn:
		return fmt.Sprintf("%v[%v+%v x%d]", e.Plane,
			time.Duration(e.At), time.Duration(e.Dur), e.Count)
	default:
		return fmt.Sprintf("%v[%v+%v mag=%v]", e.Plane,
			time.Duration(e.At), time.Duration(e.Dur), time.Duration(e.Mag))
	}
}

// Schedule is one run's fault plan: a class, the seed every draw in the run
// derives from, the generated events, and an enable mask the minimizer
// clears bits in. Generate caps events at 64 so the mask fits a uint64 and
// the whole failing run round-trips through the spec string.
type Schedule struct {
	Seed   uint64
	Class  string
	Events []Event
	Mask   uint64
}

// EnabledAt reports whether event i survives the mask.
func (s Schedule) EnabledAt(i int) bool { return s.Mask>>uint(i)&1 == 1 }

// EnabledCount counts surviving events.
func (s Schedule) EnabledCount() int {
	n := 0
	for i := range s.Events {
		if s.EnabledAt(i) {
			n++
		}
	}
	return n
}

// Enabled returns the surviving events, for reporting.
func (s Schedule) Enabled() []Event {
	out := make([]Event, 0, len(s.Events))
	for i, ev := range s.Events {
		if s.EnabledAt(i) {
			out = append(out, ev)
		}
	}
	return out
}

// Spec renders the schedule as its replay string. Because Generate is a pure
// function of (seed, class), seed + mask reconstructs the exact fault plan:
// the spec is the whole reproducer.
func (s Schedule) Spec() string {
	return fmt.Sprintf("v1:%s:%x:%x", s.Class, s.Seed, s.Mask)
}

// ParseSpec reconstructs a schedule from a replay spec (v1:<class>:<seed
// hex>:<mask hex>), regenerating the events from the seed and applying the
// mask.
func ParseSpec(spec string) (Schedule, error) {
	class, seed, mask, err := splitSpec(spec, "v1", "v1:<class>:<seed>:<mask>")
	if err != nil {
		return Schedule{}, err
	}
	if _, ok := caseByName(class); !ok {
		return Schedule{}, &SpecError{Spec: spec, Field: "class",
			Msg: fmt.Sprintf("unknown class %q", class)}
	}
	s := Generate(seed, class)
	if err := checkMask(spec, mask, s.Mask, len(s.Events)); err != nil {
		return Schedule{}, err
	}
	s.Mask = mask
	return s, nil
}

// panicSites are the trait calls PlanePanic may land in: every dispatch
// kind a normal workload exercises, so a campaign eventually panics each
// callback site the adapter crosses.
var panicSites = []core.Kind{
	core.MsgPickNextTask,
	core.MsgTaskWakeup,
	core.MsgTaskNew,
	core.MsgTaskPreempt,
	core.MsgTaskYield,
	core.MsgTaskTick,
	core.MsgTaskBlocked,
	core.MsgTaskDead,
	core.MsgSelectTaskRQ,
	core.MsgBalance,
	core.MsgTaskPrioChanged,
	core.MsgTaskAffinityChanged,
}

// Generate derives a fault schedule from a seed for one scheduler class —
// a pure function, so the seed alone reproduces the plan. Classes without a
// module (the CFS baseline) draw only kernel planes; classes without hint
// support skip storms.
func Generate(seed uint64, class string) Schedule {
	rng := ktime.NewRand(seed)
	c, _ := caseByName(class)
	pool := []Plane{PlaneIPIDrop, PlaneIPIDelay, PlaneIPIDup, PlaneTimerSkew}
	if c.NewModule != nil {
		pool = append(pool, PlanePanic, PlaneStall, PlaneForge, PlaneUpgrade, PlaneUpgradeKill)
		if c.SupportsHints {
			pool = append(pool, PlaneHintStorm)
		}
	}
	n := 2 + int(rng.Intn(4))
	evs := make([]Event, 0, n)
	for j := 0; j < n; j++ {
		evs = append(evs, eventFor(pool[rng.Intn(len(pool))], rng))
	}
	return Schedule{Seed: seed, Class: class, Events: evs, Mask: 1<<uint(n) - 1}
}

// eventFor draws one event's parameters. All times are virtual ns well
// inside the run budget, so every armed fault gets a chance to fire.
func eventFor(p Plane, rng *ktime.Rand) Event {
	ms := func(lo, hi int) int64 {
		return (int64(lo) + int64(rng.Intn(hi-lo+1))) * int64(time.Millisecond)
	}
	us := func(lo, hi int) int64 {
		return (int64(lo) + int64(rng.Intn(hi-lo+1))) * int64(time.Microsecond)
	}
	ev := Event{Plane: p}
	switch p {
	case PlanePanic:
		ev.Site = panicSites[rng.Intn(len(panicSites))]
		ev.Count = rng.Intn(400)
	case PlaneStall:
		ev.At = ms(1, 30)
		if rng.Intn(2) == 1 {
			ev.Dur = ms(1, 8) // transient: module must survive it
		}
	case PlaneForge:
		ev.Count = 1 + rng.Intn(24)
		ev.Mag = int64(1 + rng.Intn(200)) // starting pick number
	case PlaneHintStorm:
		ev.At = ms(1, 30)
		ev.Count = 8 + rng.Intn(57) // vs. a capacity-8 ring: guaranteed drops
	case PlaneIPIDrop:
		ev.At, ev.Dur = ms(1, 30), ms(1, 10)
		ev.Mag = us(250, 1000) // recovery bound: "noticed at next tick"
	case PlaneIPIDelay:
		ev.At, ev.Dur = ms(1, 30), ms(1, 10)
		ev.Mag = us(1, 100)
	case PlaneIPIDup:
		ev.At, ev.Dur = ms(1, 30), ms(1, 10)
		ev.Mag = us(0, 10)
	case PlaneTimerSkew:
		ev.At, ev.Dur = ms(1, 30), ms(1, 10)
		ev.Mag = us(10, 500)
	case PlaneUpgrade, PlaneUpgradeKill:
		ev.At = ms(1, 40)
	}
	return ev
}
