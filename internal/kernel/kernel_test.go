package kernel

import (
	"testing"
	"time"

	"enoki/internal/sim"
)

const testPolicyCFS = 0

func newTestKernel(m Machine) (*Kernel, *CFS) {
	eng := sim.New()
	k := New(eng, m, DefaultCosts())
	cfs := NewCFS(k)
	k.RegisterClass(testPolicyCFS, cfs)
	return k, cfs
}

// scriptBehavior replays a fixed list of actions, then exits.
type scriptBehavior struct {
	actions []Action
	i       int
}

func (s *scriptBehavior) Next(k *Kernel, t *Task) Action {
	if s.i >= len(s.actions) {
		return Action{Op: OpExit}
	}
	a := s.actions[s.i]
	s.i++
	return a
}

// spinFor returns a behavior that computes for total CPU time in chunk-sized
// segments, then exits.
func spinFor(total, chunk time.Duration) Behavior {
	remaining := total
	return BehaviorFunc(func(k *Kernel, t *Task) Action {
		if remaining <= 0 {
			return Action{Op: OpExit}
		}
		c := chunk
		if c > remaining {
			c = remaining
		}
		remaining -= c
		return Action{Run: c, Op: OpContinue}
	})
}

func TestSpawnRunExit(t *testing.T) {
	k, _ := newTestKernel(Machine8())
	done := false
	task := k.Spawn("solo", testPolicyCFS, spinFor(10*time.Millisecond, time.Millisecond),
		WithExitObserver(func() { done = true }))
	k.RunFor(time.Second)
	if !done {
		t.Fatal("task did not exit")
	}
	if task.State() != StateDead {
		t.Fatalf("state = %v", task.State())
	}
	if task.SumExec() != 10*time.Millisecond {
		t.Fatalf("SumExec = %v", task.SumExec())
	}
	if k.NumTasks() != 0 {
		t.Fatalf("NumTasks = %d", k.NumTasks())
	}
}

func TestTasksSpreadAcrossIdleCPUs(t *testing.T) {
	k, _ := newTestKernel(Machine8())
	var tasks []*Task
	for i := 0; i < 8; i++ {
		tasks = append(tasks, k.Spawn("spin", testPolicyCFS, spinFor(50*time.Millisecond, time.Millisecond)))
	}
	k.RunFor(5 * time.Millisecond)
	cpus := map[int]bool{}
	for _, task := range tasks {
		if task.State() != StateRunning {
			t.Fatalf("%v not running", task)
		}
		cpus[task.CPU()] = true
	}
	if len(cpus) != 8 {
		t.Fatalf("tasks on %d CPUs, want 8", len(cpus))
	}
}

func TestFairShareOneCPU(t *testing.T) {
	// Appendix A.1 shape: 5 equal CPU-bound tasks pinned to one core
	// should each get ~1/5 of the CPU.
	k, _ := newTestKernel(Machine8())
	var tasks []*Task
	for i := 0; i < 5; i++ {
		tasks = append(tasks, k.Spawn("fair", testPolicyCFS,
			spinFor(time.Hour, time.Millisecond), WithAffinity(SingleCPU(0))))
	}
	k.RunFor(2 * time.Second)
	for _, task := range tasks {
		share := float64(task.SumExec()) / float64(2*time.Second)
		if share < 0.17 || share > 0.23 {
			t.Fatalf("%v share = %.3f, want ~0.20", task, share)
		}
	}
}

func TestNiceWeighting(t *testing.T) {
	// A nice-0 task vs a nice-5 task on one CPU: weight ratio
	// 1024/335 ≈ 3.06, so shares should be ~75%/25%.
	k, _ := newTestKernel(Machine8())
	hi := k.Spawn("hi", testPolicyCFS, spinFor(time.Hour, time.Millisecond), WithAffinity(SingleCPU(0)))
	lo := k.Spawn("lo", testPolicyCFS, spinFor(time.Hour, time.Millisecond),
		WithAffinity(SingleCPU(0)), WithNice(5))
	k.RunFor(2 * time.Second)
	ratio := float64(hi.SumExec()) / float64(lo.SumExec())
	if ratio < 2.5 || ratio > 3.7 {
		t.Fatalf("share ratio = %.2f, want ~3.06", ratio)
	}
}

func TestPipePingPong(t *testing.T) {
	// Two tasks wake each other 1000 times; verify liveness and sane
	// per-message latency (CFS one-core baseline is ~3µs/wakeup).
	k, _ := newTestKernel(Machine8())
	const rounds = 1000
	var a, b *Task
	count := 0
	var finished time.Duration
	mk := func(peer **Task, starts bool) Behavior {
		first := true
		return BehaviorFunc(func(k *Kernel, t *Task) Action {
			if first && starts {
				first = false
				return Action{Run: 200 * time.Nanosecond, Wake: []*Task{*peer}, Op: OpBlock}
			}
			first = false
			count++
			if count >= 2*rounds {
				finished = time.Duration(k.Now())
				return Action{Op: OpExit}
			}
			return Action{Run: 200 * time.Nanosecond, Wake: []*Task{*peer}, Op: OpBlock}
		})
	}
	a = k.Spawn("a", testPolicyCFS, mk(&b, true), WithAffinity(SingleCPU(0)))
	b = k.Spawn("b", testPolicyCFS, mk(&a, false), WithAffinity(SingleCPU(0)))
	k.RunFor(time.Second)
	if count < 2*rounds {
		t.Fatalf("ping-pong stalled at %d/%d", count, 2*rounds)
	}
	perMsg := finished / (2 * rounds)
	if perMsg < time.Microsecond || perMsg > 20*time.Microsecond {
		t.Fatalf("per-message time = %v, want low µs", perMsg)
	}
}

func TestWakeupLatencyObserved(t *testing.T) {
	k, _ := newTestKernel(Machine8())
	var lat []time.Duration
	sleeper := k.Spawn("sleeper", testPolicyCFS, &scriptBehavior{actions: []Action{
		{Op: OpBlock},
		{Run: time.Microsecond, Op: OpExit},
	}}, WithWakeObserver(func(d time.Duration) { lat = append(lat, d) }))
	k.RunFor(time.Millisecond)
	if sleeper.State() != StateBlocked {
		t.Fatalf("state = %v", sleeper.State())
	}
	k.Wake(sleeper)
	k.RunFor(time.Millisecond)
	if sleeper.State() != StateDead {
		t.Fatalf("task did not finish: %v", sleeper.State())
	}
	// Spawn + wake both count.
	if len(lat) == 0 {
		t.Fatal("no wakeup latency observed")
	}
	last := lat[len(lat)-1]
	if last <= 0 || last > 100*time.Microsecond {
		t.Fatalf("wake latency = %v", last)
	}
}

func TestSleepWakes(t *testing.T) {
	k, _ := newTestKernel(Machine8())
	task := k.Spawn("napper", testPolicyCFS, &scriptBehavior{actions: []Action{
		{Run: time.Microsecond, Op: OpSleep, SleepFor: 5 * time.Millisecond},
		{Run: time.Microsecond, Op: OpExit},
	}})
	k.RunFor(2 * time.Millisecond)
	if task.State() != StateBlocked {
		t.Fatalf("not sleeping: %v", task.State())
	}
	k.RunFor(10 * time.Millisecond)
	if task.State() != StateDead {
		t.Fatalf("did not wake from sleep: %v", task.State())
	}
}

func TestYieldAlternation(t *testing.T) {
	// Two yielding tasks on one CPU should interleave, not starve.
	k, _ := newTestKernel(Machine8())
	counts := [2]int{}
	mk := func(idx int) Behavior {
		return BehaviorFunc(func(k *Kernel, t *Task) Action {
			counts[idx]++
			if counts[idx] >= 100 {
				return Action{Op: OpExit}
			}
			return Action{Run: 10 * time.Microsecond, Op: OpYield}
		})
	}
	k.Spawn("y0", testPolicyCFS, mk(0), WithAffinity(SingleCPU(0)))
	k.Spawn("y1", testPolicyCFS, mk(1), WithAffinity(SingleCPU(0)))
	k.RunFor(time.Second)
	if counts[0] < 100 || counts[1] < 100 {
		t.Fatalf("yield starved a task: %v", counts)
	}
}

func TestPreemptionByTick(t *testing.T) {
	// A long-running task must not starve a competitor on the same CPU:
	// CFS tick preemption bounds the competitor's wait.
	k, _ := newTestKernel(Machine8())
	hog := k.Spawn("hog", testPolicyCFS, spinFor(time.Hour, 100*time.Millisecond), WithAffinity(SingleCPU(0)))
	other := k.Spawn("other", testPolicyCFS, spinFor(50*time.Millisecond, time.Millisecond), WithAffinity(SingleCPU(0)))
	k.RunFor(500 * time.Millisecond)
	if other.SumExec() < 40*time.Millisecond {
		t.Fatalf("competitor starved: ran %v", other.SumExec())
	}
	if hog.SumExec() < 100*time.Millisecond {
		t.Fatalf("hog overly throttled: %v", hog.SumExec())
	}
}

func TestNewidleBalancePullsWork(t *testing.T) {
	// Queue several tasks on CPU 0; when other CPUs go idle they should
	// pull work rather than stay idle.
	k, _ := newTestKernel(Machine8())
	var tasks []*Task
	for i := 0; i < 6; i++ {
		tk := k.Spawn("w", testPolicyCFS, spinFor(20*time.Millisecond, time.Millisecond))
		tasks = append(tasks, tk)
	}
	// Force them all onto CPU 0 first.
	for _, tk := range tasks {
		k.SetAffinity(tk, SingleCPU(0))
	}
	for _, tk := range tasks {
		k.SetAffinity(tk, AllCPUs(8))
	}
	k.RunFor(40 * time.Millisecond)
	busyCPUs := 0
	for i := 0; i < 8; i++ {
		if k.CPUBusy(i) > 5*time.Millisecond {
			busyCPUs++
		}
	}
	if busyCPUs < 4 {
		t.Fatalf("balancing spread work across only %d CPUs", busyCPUs)
	}
}

func TestAffinityPinning(t *testing.T) {
	k, _ := newTestKernel(Machine8())
	task := k.Spawn("pinned", testPolicyCFS, spinFor(20*time.Millisecond, 100*time.Microsecond),
		WithAffinity(SingleCPU(3)))
	for i := 0; i < 100; i++ {
		k.RunFor(200 * time.Microsecond)
		if task.State() == StateDead {
			break
		}
		if cpu := task.CPU(); cpu != 3 {
			t.Fatalf("pinned task on CPU %d", cpu)
		}
	}
}

func TestSetAffinityMovesRunningTask(t *testing.T) {
	k, _ := newTestKernel(Machine8())
	task := k.Spawn("mover", testPolicyCFS, spinFor(50*time.Millisecond, time.Millisecond),
		WithAffinity(SingleCPU(0)))
	k.RunFor(5 * time.Millisecond)
	if task.CPU() != 0 {
		t.Fatalf("task on %d", task.CPU())
	}
	k.SetAffinity(task, SingleCPU(5))
	k.RunFor(5 * time.Millisecond)
	if task.CPU() != 5 || task.State() != StateRunning {
		t.Fatalf("task = %v after affinity move", task)
	}
	k.RunFor(100 * time.Millisecond)
	if task.State() != StateDead {
		t.Fatalf("task did not finish after move: %v", task)
	}
}

func TestSetNiceTakesEffect(t *testing.T) {
	k, _ := newTestKernel(Machine8())
	a := k.Spawn("a", testPolicyCFS, spinFor(time.Hour, time.Millisecond), WithAffinity(SingleCPU(0)))
	b := k.Spawn("b", testPolicyCFS, spinFor(time.Hour, time.Millisecond), WithAffinity(SingleCPU(0)))
	k.RunFor(100 * time.Millisecond)
	k.SetNice(b, 19)
	aStart, bStart := a.SumExec(), b.SumExec()
	k.RunFor(2 * time.Second)
	aGain := a.SumExec() - aStart
	bGain := b.SumExec() - bStart
	// weight ratio 1024/15 ≈ 68; allow a loose band.
	if aGain < 20*bGain {
		t.Fatalf("nice 19 not throttled: a=%v b=%v", aGain, bGain)
	}
	if bGain == 0 {
		t.Fatal("nice 19 task fully starved")
	}
}

func TestCrossCPUWake(t *testing.T) {
	k, _ := newTestKernel(Machine8())
	var lat time.Duration
	sleeper := k.Spawn("s", testPolicyCFS, &scriptBehavior{actions: []Action{
		{Op: OpBlock},
		{Run: time.Microsecond, Op: OpExit},
	}}, WithAffinity(SingleCPU(4)), WithWakeObserver(func(d time.Duration) { lat = d }))
	waker := k.Spawn("w", testPolicyCFS, &scriptBehavior{}, WithAffinity(SingleCPU(0)))
	_ = waker
	k.RunFor(time.Millisecond)
	start := k.Now()
	k.Wake(sleeper)
	k.RunFor(time.Millisecond)
	if sleeper.State() != StateDead {
		t.Fatalf("sleeper state = %v", sleeper.State())
	}
	if lat <= 0 {
		t.Fatalf("no cross-cpu wake latency, start=%v", start)
	}
}

func TestMoveTaskRejectsRunningAndForbidden(t *testing.T) {
	k, _ := newTestKernel(Machine8())
	task := k.Spawn("t", testPolicyCFS, spinFor(time.Second, time.Millisecond), WithAffinity(SingleCPU(0)))
	k.RunFor(time.Millisecond)
	if task.State() != StateRunning {
		t.Fatalf("state = %v", task.State())
	}
	if k.MoveTask(task, 1) {
		t.Fatal("moved a running task")
	}
	blocked := k.Spawn("b", testPolicyCFS, &scriptBehavior{actions: []Action{{Op: OpBlock}}})
	k.RunFor(time.Millisecond)
	if k.MoveTask(blocked, 1) {
		t.Fatal("moved a blocked task")
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() (time.Duration, uint64) {
		k, _ := newTestKernel(Machine8())
		for i := 0; i < 10; i++ {
			k.Spawn("w", testPolicyCFS, spinFor(15*time.Millisecond, 500*time.Microsecond))
		}
		k.RunFor(100 * time.Millisecond)
		return k.CPUBusy(0), k.CtxSwitches
	}
	b1, s1 := run()
	b2, s2 := run()
	if b1 != b2 || s1 != s2 {
		t.Fatalf("nondeterministic: (%v,%d) vs (%v,%d)", b1, s1, b2, s2)
	}
}

func TestCPUShareAccounting(t *testing.T) {
	k, _ := newTestKernel(Machine8())
	task := k.Spawn("acct", testPolicyCFS, spinFor(30*time.Millisecond, time.Millisecond), WithAffinity(SingleCPU(2)))
	k.RunFor(100 * time.Millisecond)
	if task.SumExec() != 30*time.Millisecond {
		t.Fatalf("SumExec = %v", task.SumExec())
	}
	busy := k.CPUBusy(2)
	if busy < 30*time.Millisecond || busy > 35*time.Millisecond {
		t.Fatalf("CPU busy = %v, want 30ms + small overhead", busy)
	}
}

func TestDuplicateClassPanics(t *testing.T) {
	k, _ := newTestKernel(Machine8())
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate class id did not panic")
		}
	}()
	k.RegisterClass(testPolicyCFS, NewCFS(k))
}

func TestSpawnUnknownClassPanics(t *testing.T) {
	k, _ := newTestKernel(Machine8())
	defer func() {
		if recover() == nil {
			t.Fatal("unknown class did not panic")
		}
	}()
	k.Spawn("x", 99, &scriptBehavior{})
}

func TestMachine80Topology(t *testing.T) {
	m := Machine80()
	if m.NumCPUs != 80 || m.NumNodes != 2 {
		t.Fatalf("bad topology: %+v", m)
	}
	if m.SameNode(0, 79) || !m.SameNode(0, 39) || !m.SameNode(40, 79) {
		t.Fatal("node mapping wrong")
	}
}

func TestCPUMask(t *testing.T) {
	m := AllCPUs(80)
	if m.Count() != 80 || !m.Has(79) || m.Has(80) || m.Has(-1) {
		t.Fatalf("AllCPUs broken: %+v", m)
	}
	m.Clear(79)
	if m.Has(79) || m.Count() != 79 {
		t.Fatal("Clear broken")
	}
	s := SingleCPU(65)
	if !s.Has(65) || s.Count() != 1 {
		t.Fatal("SingleCPU broken")
	}
}

func TestWeightTable(t *testing.T) {
	if WeightOf(0) != 1024 || WeightOf(-20) != 88761 || WeightOf(19) != 15 {
		t.Fatal("weight table wrong")
	}
	if WeightOf(-100) != WeightOf(-20) || WeightOf(100) != WeightOf(19) {
		t.Fatal("weight clamping wrong")
	}
	for n := -20; n < 19; n++ {
		if WeightOf(n) <= WeightOf(n+1) {
			t.Fatalf("weights not monotone at nice %d", n)
		}
	}
}
