package trace

import (
	"testing"

	"enoki/internal/core"
)

func TestKindString(t *testing.T) {
	names := map[Kind]string{
		KindInvalid: "invalid", KindDispatch: "dispatch", KindSwitch: "switch",
		KindIdle: "idle", KindWake: "wake", KindTick: "tick",
		KindBalance: "balance", KindHint: "hint", KindWatchdog: "watchdog",
		KindFault: "fault", KindKill: "kill", KindExit: "exit",
	}
	for k, want := range names {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if Kind(200).String() != "invalid" {
		t.Error("out-of-range Kind should stringify as invalid")
	}
}

// TestNilTracerIsDisabled pins the "zero value via nil is off" contract the
// hot-path call sites rely on.
func TestNilTracerIsDisabled(t *testing.T) {
	var tr *Tracer
	tr.Emit(Event{Kind: KindSwitch})
	tr.EmitAlways(Event{Kind: KindSwitch})
	tr.TraceCrossing(&core.Message{Kind: core.MsgTaskTick}, false)
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Events() != nil {
		t.Error("nil tracer must be inert")
	}
}

// TestSamplerDeterministic pins the sampling contract: a modular counter,
// not a random draw — the same event stream always keeps the same subset,
// and only the high-volume kinds are thinned.
func TestSamplerDeterministic(t *testing.T) {
	run := func() []Event {
		tr := New(1 << 10)
		tr.SetSampleEvery(4)
		for i := 0; i < 20; i++ {
			tr.Emit(Event{Ts: int64(i), Kind: KindTick})
		}
		tr.Emit(Event{Ts: 100, Kind: KindSwitch}) // never sampled away
		tr.Emit(Event{Ts: 101, Kind: KindWake})
		return tr.Events()
	}
	a, b := run(), run()
	if len(a) != 5+2 {
		t.Fatalf("1-in-4 of 20 ticks + 2 always-on events: got %d events, want 7", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("two identical runs diverged at event %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	// EmitAlways bypasses the sampler even for a sampled kind.
	tr := New(1 << 10)
	tr.SetSampleEvery(1000)
	for i := 0; i < 10; i++ {
		tr.EmitAlways(Event{Ts: int64(i), Kind: KindDispatch})
	}
	if tr.Len() != 10 {
		t.Errorf("EmitAlways recorded %d/10 events", tr.Len())
	}
}

// TestRingOverflowDrops pins the overflow semantics: drop and count, never
// block or grow.
func TestRingOverflowDrops(t *testing.T) {
	tr := New(4)
	for i := 0; i < 10; i++ {
		tr.Emit(Event{Ts: int64(i), Kind: KindSwitch})
	}
	if tr.Len() != 4 {
		t.Errorf("ring holds %d events, want 4", tr.Len())
	}
	if tr.Dropped() != 6 {
		t.Errorf("Dropped() = %d, want 6", tr.Dropped())
	}
	evs := tr.Events()
	if len(evs) != 4 || evs[0].Ts != 0 {
		t.Errorf("drain returned %d events starting at ts=%d; want the 4 oldest", len(evs), evs[0].Ts)
	}
}

// TestTraceCrossingFaultedBypassesSampler: a crossing that panicked must be
// recorded even under aggressive sampling.
func TestTraceCrossingFaultedBypassesSampler(t *testing.T) {
	tr := New(16)
	tr.SetSampleEvery(1000)
	m := &core.Message{Kind: core.MsgPickNextTask, Thread: 3, Now: 42}
	tr.TraceCrossing(m, false) // seen=1, 1%1000==1 → kept
	tr.TraceCrossing(m, false) // sampled away
	tr.TraceCrossing(m, true)  // faulted → always kept
	if tr.Len() != 2 {
		t.Fatalf("recorded %d crossings, want 2 (first sampled + faulted)", tr.Len())
	}
	evs := tr.Events()
	last := evs[len(evs)-1]
	if last.Kind != KindDispatch || last.CPU != 3 || last.Ts != 42 || last.Arg != int64(core.MsgPickNextTask) {
		t.Errorf("faulted crossing event = %+v", last)
	}
}

func TestFromMessage(t *testing.T) {
	cases := []struct {
		name string
		m    *core.Message
		want Event
	}{
		{"pick-hit", &core.Message{Kind: core.MsgPickNextTask, Now: 10, Thread: 2, RetSched: &core.SchedulableRef{PID: 7}},
			Event{Ts: 10, Kind: KindSwitch, CPU: 2, PID: 7, Policy: -1}},
		{"pick-idle", &core.Message{Kind: core.MsgPickNextTask, Now: 11, Thread: 3},
			Event{Ts: 11, Kind: KindIdle, CPU: 3, Policy: -1}},
		{"wakeup", &core.Message{Kind: core.MsgTaskWakeup, Now: 12, PID: 9, WakeCPU: 5, LastCPU: 1},
			Event{Ts: 12, Kind: KindWake, CPU: 5, PID: 9, Policy: -1, Arg: 1}},
		{"tick", &core.Message{Kind: core.MsgTaskTick, Now: 13, Thread: 0, PID: 9},
			Event{Ts: 13, Kind: KindTick, CPU: 0, PID: 9, Policy: -1}},
		{"balance", &core.Message{Kind: core.MsgBalance, Now: 14, Thread: 6},
			Event{Ts: 14, Kind: KindBalance, CPU: 6, Policy: -1}},
		{"dead", &core.Message{Kind: core.MsgTaskDead, Now: 15, Thread: 1, PID: 9},
			Event{Ts: 15, Kind: KindExit, CPU: 1, PID: 9, Policy: -1}},
		{"hint", &core.Message{Kind: core.MsgEnterQueue, Now: 16, Thread: -1, QueueID: 3},
			Event{Ts: 16, Kind: KindHint, CPU: -1, Policy: -1, Arg: 3}},
		{"fault", &core.Message{Kind: core.MsgModuleFault, Now: 17, Thread: 2, ErrCode: 4},
			Event{Ts: 17, Kind: KindFault, CPU: 2, Policy: -1, Arg: 4}},
		{"other", &core.Message{Kind: core.MsgTaskNew, Now: 18, Thread: 0, PID: 9},
			Event{Ts: 18, Kind: KindDispatch, CPU: 0, PID: 9, Policy: -1, Arg: int64(core.MsgTaskNew)}},
	}
	for _, c := range cases {
		got, ok := FromMessage(c.m)
		if !ok {
			t.Errorf("%s: ok=false", c.name)
			continue
		}
		if got != c.want {
			t.Errorf("%s: event = %+v, want %+v", c.name, got, c.want)
		}
	}
	if _, ok := FromMessage(nil); ok {
		t.Error("FromMessage(nil) reported ok")
	}
}

// TestEmitZeroAlloc pins the hot-path invariant at the tracer level.
func TestEmitZeroAlloc(t *testing.T) {
	tr := New(1 << 16)
	ev := Event{Ts: 1, Kind: KindSwitch, CPU: 2, PID: 3, Policy: 1}
	avg := testing.AllocsPerRun(1000, func() { tr.Emit(ev) })
	if avg != 0 {
		t.Errorf("Emit: %v allocs/op, want 0", avg)
	}
	m := &core.Message{Kind: core.MsgTaskTick, Thread: 1, PID: 2}
	avg = testing.AllocsPerRun(1000, func() { tr.TraceCrossing(m, false) })
	if avg != 0 {
		t.Errorf("TraceCrossing: %v allocs/op, want 0", avg)
	}
}
