package enokic

import "enoki/internal/core"

// Degradable reports whether the loaded module implements
// core.BrownoutMode — i.e. declares a degraded mode the overload plane
// can flip.
func (a *Adapter) Degradable() bool {
	_, ok := a.sched.(core.BrownoutMode)
	return ok
}

// SetDegraded flips the module's brownout mode. Like every crossing into
// the module it is fault-contained: a panic in the module's SetDegraded
// trips the normal kill road instead of unwinding the caller. It reports
// whether the mode was delivered — false for a killed module, a module
// that does not implement core.BrownoutMode, or a call that tripped a
// fault.
func (a *Adapter) SetDegraded(on bool) bool {
	if a.killed {
		return false
	}
	bm, ok := a.sched.(core.BrownoutMode)
	if !ok {
		return false
	}
	if fault := core.SafeCall(func() { bm.SetDegraded(on) }); fault != nil {
		a.trip(*fault, 0)
		return false
	}
	return true
}
