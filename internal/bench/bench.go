// Package bench holds the hot-path micro-benchmarks in plain functions so
// they can run two ways: as ordinary `go test -bench` benchmarks (thin
// delegates in each package's _test.go) and from `enokibench -benchjson`,
// which drives them through testing.Benchmark and writes ns/op + allocs/op
// to a JSON file for benchstat-style tracking.
//
// These benchmarks pin the zero-allocation invariant of the simulation hot
// path (DESIGN.md "Performance model"): the steady-state schedule loop —
// event firing, tick/preemption re-arming, message dispatch — must not
// allocate, so experiment throughput is bounded by work, not by the
// collector.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	"enoki/internal/chaos"
	"enoki/internal/core"
	"enoki/internal/enokic"
	"enoki/internal/kernel"
	"enoki/internal/metrics"
	"enoki/internal/sched/fifo"
	"enoki/internal/sim"
	"enoki/internal/trace"
)

// --- sim ---

// SimPostStep measures the fire-and-forget event path: Post draws from the
// engine free list, Step fires and recycles. Steady state allocates nothing.
func SimPostStep(b *testing.B) {
	eng := sim.New()
	var fn func()
	n := 0
	fn = func() {
		n++
		eng.Post(time.Microsecond, fn)
	}
	eng.Post(time.Microsecond, fn)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !eng.Step() {
			b.Fatal("engine drained")
		}
	}
}

// SimReschedule measures the persistent-event re-arm path used by per-CPU
// tick and preemption timers: one Event, re-armed every firing.
func SimReschedule(b *testing.B) {
	eng := sim.New()
	var ev *sim.Event
	ev = eng.NewEvent(func() { eng.RescheduleAfter(ev, time.Microsecond) })
	eng.RescheduleAfter(ev, time.Microsecond)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !eng.Step() {
			b.Fatal("engine drained")
		}
	}
}

// --- kernel ---

// ScheduleOp measures one full block→wake→schedule round trip per
// iteration: two pinned tasks ping-pong on one CPU.
func ScheduleOp(b *testing.B) { scheduleOp(b, false, false) }

// ScheduleOpTraced is ScheduleOp with the full observability layer live —
// tracer ring plus per-class/per-CPU histograms — guarding the PR 1
// invariant: enabling tracing must keep the hot path at 0 allocs/op.
func ScheduleOpTraced(b *testing.B) { scheduleOp(b, true, false) }

// ScheduleOpChaosIdle is ScheduleOp with the chaos engine's kernel fault
// injector installed but every fault window disarmed — the steady state of a
// chaos run between events. The injector's window checks ride the kick and
// resched-timer paths of every schedule operation; they must add zero
// allocations (pinned by TestScheduleOpChaosIdleZeroAlloc).
func ScheduleOpChaosIdle(b *testing.B) { scheduleOp(b, false, true) }

func scheduleOp(b *testing.B, traced, chaosIdle bool) {
	eng := sim.New()
	k := kernel.New(eng, kernel.Machine8(), kernel.DefaultCosts())
	k.RegisterClass(0, kernel.NewCFS(k))
	if traced {
		k.SetTracer(trace.New(1 << 16))
		k.SetMetrics(metrics.NewSet(k.NumCPUs()))
	}
	if chaosIdle {
		k.SetFaultInjector(chaos.DisarmedInjector(func() int64 { return int64(k.Now()) }, 1))
	}
	var a, c *kernel.Task
	count := 0
	mk := func(peer **kernel.Task, starts bool) kernel.Behavior {
		started := false
		wake := make([]*kernel.Task, 1)
		return kernel.BehaviorFunc(func(k *kernel.Kernel, t *kernel.Task) kernel.Action {
			wake[0] = *peer
			if starts && !started {
				started = true
				return kernel.Action{Run: 100 * time.Nanosecond, Wake: wake, Op: kernel.OpBlock}
			}
			count++
			return kernel.Action{Run: 100 * time.Nanosecond, Wake: wake, Op: kernel.OpBlock}
		})
	}
	a = k.Spawn("a", 0, mk(&c, true), kernel.WithAffinity(kernel.SingleCPU(0)))
	c = k.Spawn("b", 0, mk(&a, false), kernel.WithAffinity(kernel.SingleCPU(0)))
	b.ReportAllocs()
	b.ResetTimer()
	target := 0
	for i := 0; i < b.N; i++ {
		target++
		for count < target {
			if !eng.Step() {
				b.Fatal("engine drained")
			}
		}
	}
}

// WakeBurst measures the batched cross-CPU wake path on the two-socket
// Machine80: a producer on CPU 0 wakes 16 consumers — pinned in pairs on
// one core of each LLC group across both sockets — in a single Action.Wake
// burst, so the 16 wakes coalesce into at most 8 IPIs (one per distinct
// target), half of them crossing the socket boundary. Each consumer runs a
// short segment and blocks again; the producer sleeps long enough for the
// whole burst to drain, then fires the next one. One iteration is one full
// burst cycle. The batched wake/IPI path must stay at 0 allocs/op (pinned
// by TestWakeBurstZeroAlloc).
func WakeBurst(b *testing.B) {
	eng := sim.New()
	m := kernel.Machine80()
	k := kernel.New(eng, m, kernel.CostsFor(m))
	k.RegisterClass(0, kernel.NewCFS(k))

	// One core per LLC group: 4 in socket 0, 4 in socket 1; two consumers
	// pinned per core so per-target coalescing has work to do.
	targets := []int{5, 15, 25, 35, 45, 55, 65, 75}
	var consumers []*kernel.Task
	for _, cpu := range targets {
		for j := 0; j < 2; j++ {
			consumers = append(consumers, k.Spawn("consumer", 0, kernel.BehaviorFunc(
				func(*kernel.Kernel, *kernel.Task) kernel.Action {
					return kernel.Action{Run: 200 * time.Nanosecond, Op: kernel.OpBlock}
				}), kernel.WithAffinity(kernel.SingleCPU(cpu))))
		}
	}
	bursts := 0
	k.Spawn("producer", 0, kernel.BehaviorFunc(
		func(*kernel.Kernel, *kernel.Task) kernel.Action {
			bursts++
			return kernel.Action{Run: 100 * time.Nanosecond, Wake: consumers,
				Op: kernel.OpSleep, SleepFor: 30 * time.Microsecond}
		}), kernel.WithAffinity(kernel.SingleCPU(0)))

	// Warm up: one full cycle fills the event free list and first-wake state.
	for bursts < 2 {
		if !eng.Step() {
			b.Fatal("engine drained")
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	target := bursts
	for i := 0; i < b.N; i++ {
		target++
		for bursts < target {
			if !eng.Step() {
				b.Fatal("engine drained")
			}
		}
	}
	if k.IPIsCoalesced == 0 {
		b.Fatal("burst coalesced no IPIs")
	}
}

// SpawnExit measures task creation and teardown.
func SpawnExit(b *testing.B) {
	eng := sim.New()
	k := kernel.New(eng, kernel.Machine8(), kernel.DefaultCosts())
	k.RegisterClass(0, kernel.NewCFS(k))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Spawn("s", 0, kernel.BehaviorFunc(func(*kernel.Kernel, *kernel.Task) kernel.Action {
			return kernel.Action{Run: time.Microsecond, Op: kernel.OpExit}
		}))
		k.RunFor(100 * time.Microsecond)
	}
	if k.NumTasks() != 0 {
		b.Fatal("tasks leaked")
	}
}

// TickPath measures the steady-state tick + preemption machinery with 16
// CPU-bound tasks on 8 cores. Zero allocations once warmed up.
func TickPath(b *testing.B) {
	eng := sim.New()
	k := kernel.New(eng, kernel.Machine8(), kernel.DefaultCosts())
	k.RegisterClass(0, kernel.NewCFS(k))
	for i := 0; i < 16; i++ {
		k.Spawn("t", 0, kernel.BehaviorFunc(func(*kernel.Kernel, *kernel.Task) kernel.Action {
			return kernel.Action{Run: 10 * time.Millisecond, Op: kernel.OpContinue}
		}))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.RunFor(time.Millisecond) // ≥8 ticks + preemptions per iteration
	}
}

// --- core ---

// nopSched is the cheapest possible module, isolating Dispatch's own cost.
type nopSched struct{ core.BaseScheduler }

func (nopSched) GetPolicy() int { return 1 }
func (nopSched) PickNextTask(cpu int, curr *core.Schedulable, rt time.Duration) *core.Schedulable {
	return nil
}
func (nopSched) TaskNew(pid int, rt time.Duration, r bool, allowed []int, s *core.Schedulable) {}
func (nopSched) TaskWakeup(pid int, rt time.Duration, d bool, l, w int, s *core.Schedulable)   {}
func (nopSched) TaskPreempt(pid int, rt time.Duration, cpu int, preempted bool, s *core.Schedulable) {
}
func (nopSched) TaskYield(pid int, rt time.Duration, cpu int, s *core.Schedulable)    {}
func (nopSched) TaskDeparted(pid, cpu int) *core.Schedulable                          { return nil }
func (nopSched) SelectTaskRQ(pid, prev int, wakeup bool) int                          { return prev }
func (nopSched) MigrateTaskRQ(pid, newCPU int, s *core.Schedulable) *core.Schedulable { return s }

// Dispatch measures libEnoki's processing function: the per-message parse +
// call + reply write that happens on every framework crossing.
func Dispatch(b *testing.B) {
	s := nopSched{}
	m := &core.Message{Kind: core.MsgPickNextTask, CPU: 3}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.RetSched = nil
		core.Dispatch(s, m)
	}
}

// DispatchWakeup includes a token materialisation (the replay path): the
// Schedulable is built in the message's inline scratch slot, so the hot
// path stays allocation-free.
func DispatchWakeup(b *testing.B) {
	s := nopSched{}
	m := &core.Message{Kind: core.MsgTaskWakeup, PID: 7,
		Sched: &core.SchedulableRef{PID: 7, CPU: 2, Gen: 9}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		core.Dispatch(s, m)
	}
}

// DispatchAllMessages returns one pre-built message per dispatchable Kind,
// exactly what a replay drain feeds through Dispatch. Shared with the
// zero-allocation pin test in internal/core.
func DispatchAllMessages() []*core.Message {
	ref := &core.SchedulableRef{PID: 7, CPU: 2, Gen: 9}
	allowed := []int{0, 1, 2}
	return []*core.Message{
		{Kind: core.MsgPickNextTask, CPU: 3},
		{Kind: core.MsgPntErr, CPU: 3, PID: 7, ErrCode: int(core.PickStale), Sched: ref},
		{Kind: core.MsgTaskDead, PID: 7},
		{Kind: core.MsgTaskBlocked, PID: 7, CPU: 3},
		{Kind: core.MsgTaskWakeup, PID: 7, LastCPU: 1, WakeCPU: 2, Sched: ref},
		{Kind: core.MsgTaskNew, PID: 7, Runnable: true, Allowed: allowed, Sched: ref},
		{Kind: core.MsgTaskPreempt, PID: 7, CPU: 3, Sched: ref},
		{Kind: core.MsgTaskYield, PID: 7, CPU: 3, Sched: ref},
		{Kind: core.MsgTaskDeparted, PID: 7, CPU: 3},
		{Kind: core.MsgTaskAffinityChanged, PID: 7, Allowed: allowed},
		{Kind: core.MsgTaskPrioChanged, PID: 7, Prio: 4},
		{Kind: core.MsgTaskTick, CPU: 3, Queued: true, PID: 7},
		{Kind: core.MsgSelectTaskRQ, PID: 7, PrevCPU: 1, Wakeup: true},
		{Kind: core.MsgMigrateTaskRQ, PID: 7, NewCPU: 4, Sched: ref},
		{Kind: core.MsgBalance, CPU: 3},
		{Kind: core.MsgBalanceErr, CPU: 3, BalancePID: 7, Sched: ref},
		{Kind: core.MsgEnterQueue, QueueID: 1, Count: 2},
		{Kind: core.MsgParseHint},
	}
}

// DispatchAll drives every dispatchable message Kind through Dispatch each
// iteration — the full trait surface a record log can carry.
func DispatchAll(b *testing.B) {
	s := nopSched{}
	msgs := DispatchAllMessages()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, m := range msgs {
			m.RetSched = nil
			core.Dispatch(s, m)
		}
	}
}

// DispatchTraced drives the same message set through the panic-contained +
// traced crossing (SafeDispatchTraced with a live tracer sink) — the most
// instrumented form a crossing can take, still zero allocations.
func DispatchTraced(b *testing.B) {
	s := nopSched{}
	msgs := DispatchAllMessages()
	tr := trace.New(1 << 12)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, m := range msgs {
			m.RetSched = nil
			if f := core.SafeDispatchTraced(s, m, tr); f != nil {
				b.Fatalf("unexpected fault: %v", f)
			}
		}
	}
}

// --- registry + JSON output ---

// Entry names one benchmark.
type Entry struct {
	Name string
	Fn   func(*testing.B)
}

// All lists every hot-path benchmark under its `go test -bench` name.
func All() []Entry {
	return []Entry{
		{"BenchmarkSimPostStep", SimPostStep},
		{"BenchmarkSimReschedule", SimReschedule},
		{"BenchmarkScheduleOp", ScheduleOp},
		{"BenchmarkScheduleOpTraced", ScheduleOpTraced},
		{"BenchmarkScheduleOpChaosIdle", ScheduleOpChaosIdle},
		{"BenchmarkWakeBurst", WakeBurst},
		{"BenchmarkSpawnExit", SpawnExit},
		{"BenchmarkTickPath", TickPath},
		{"BenchmarkDispatch", Dispatch},
		{"BenchmarkDispatchWakeup", DispatchWakeup},
		{"BenchmarkDispatchAll", DispatchAll},
		{"BenchmarkDispatchTraced", DispatchTraced},
		{"BenchmarkScheduleOpModuleFIFO", ScheduleOpModuleFIFO},
		{"BenchmarkScheduleOpVerifiedFIFO", ScheduleOpVerifiedFIFO},
	}
}

// --- fixed-seed traced run ---------------------------------------------------

// TraceStats describes the tracer's view of the fixed-seed run.
type TraceStats struct {
	Events  int    `json:"events"`
	Dropped uint64 `json:"dropped"`
}

// TraceRun executes a small fixed-seed workload (an Enoki FIFO module above
// CFS, spinners + sleepers on 8 CPUs, 20 ms of virtual time) with the full
// observability layer enabled and returns the per-class histogram summaries
// plus the tracer stats. Everything is virtual-time-driven, so the result is
// identical on every host and run.
func TraceRun() ([]metrics.ClassSummary, TraceStats) {
	eng := sim.New()
	k := kernel.New(eng, kernel.Machine8(), kernel.DefaultCosts())
	const policyEnoki = 1
	a := enokic.Load(k, policyEnoki, enokic.DefaultConfig(), func(env core.Env) core.Scheduler {
		return fifo.New(env, policyEnoki)
	})
	k.RegisterClass(0, kernel.NewCFS(k))

	tr := trace.New(1 << 16)
	ms := metrics.NewSet(k.NumCPUs())
	k.SetTracer(tr)
	k.SetMetrics(ms)
	a.SetTracer(tr)
	a.SetMetrics(ms)

	mkLoop := func(rounds int, run, sleep time.Duration) kernel.Behavior {
		n := 0
		return kernel.BehaviorFunc(func(*kernel.Kernel, *kernel.Task) kernel.Action {
			n++
			if n > rounds {
				return kernel.Action{Op: kernel.OpExit}
			}
			return kernel.Action{Run: run, Op: kernel.OpSleep, SleepFor: sleep}
		})
	}
	for i := 0; i < 6; i++ {
		k.Spawn("enoki-worker", policyEnoki, mkLoop(60, 150*time.Microsecond, 50*time.Microsecond))
	}
	for i := 0; i < 2; i++ {
		k.Spawn("cfs-batch", 0, mkLoop(30, 400*time.Microsecond, 100*time.Microsecond))
	}
	k.RunFor(20 * time.Millisecond)

	return ms.Summaries(), TraceStats{Events: tr.Len(), Dropped: tr.Dropped()}
}

// Result is one benchmark's measurement, JSON-ready.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Run measures every benchmark via testing.Benchmark.
func Run() []Result {
	var out []Result
	for _, e := range All() {
		r := testing.Benchmark(e.Fn)
		out = append(out, Result{
			Name:        e.Name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		})
	}
	return out
}

// Output is the full -benchjson document: micro-benchmark measurements plus
// the histogram summaries of the fixed-seed traced run.
type Output struct {
	Benchmarks       []Result               `json:"benchmarks"`
	CrossingAblation CrossingAblation       `json:"crossing_ablation"`
	TraceHistograms  []metrics.ClassSummary `json:"trace_histograms"`
	Trace            TraceStats             `json:"trace"`
}

// WriteJSON runs every benchmark and the fixed-seed traced workload, writes
// the combined document to path, and returns it.
func WriteJSON(path string) (*Output, error) {
	out := &Output{Benchmarks: Run()}
	out.CrossingAblation = MeasureCrossingAblation()
	out.TraceHistograms, out.Trace = TraceRun()
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return nil, err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return nil, fmt.Errorf("bench: writing %s: %w", path, err)
	}
	return out, nil
}
