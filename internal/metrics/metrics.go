// Package metrics aggregates the observability layer's latency and depth
// distributions: log-bucketed histograms (stats.LogHist) of dispatch
// latency, pick wait, wakeup-to-run delay and queue depth, kept per CPU and
// per scheduler class. All recording paths are zero-alloc — every histogram
// a run will touch is preallocated when the class is registered — and all
// values are modeled (virtual-time) quantities, so serial and parallel runs
// of the same seed aggregate identically.
package metrics

import (
	"fmt"
	"sort"
	"strings"

	"enoki/internal/stats"
)

// CPUMetrics holds one CPU's distributions for one scheduler class. Slot
// conventions are handled by ClassMetrics.CPU; use that accessor.
type CPUMetrics struct {
	// DispatchLat is the modeled cost of one framework crossing (message
	// build + processing-function call + reply copy-back), ns.
	DispatchLat stats.LogHist
	// PickWait is how long a task sat runnable in the class queue before a
	// pick_next_task chose it, ns.
	PickWait stats.LogHist
	// WakeToRun is wakeup-to-first-instruction latency, ns.
	WakeToRun stats.LogHist
	// QueueDepth samples the class's runnable backlog at enqueue time.
	QueueDepth stats.LogHist

	// Crossings counts framework crossings attributed to this CPU.
	Crossings uint64
	// Picks counts pick_next_task crossings that returned a task.
	Picks uint64
	// Faults counts crossings that tripped the fault layer.
	Faults uint64
	// HintsDelivered counts hint pushes that landed in the class's hint
	// rings; HintsDropped counts pushes lost to ring overflow. Hint pushes
	// come from user context, so in practice both accumulate in the
	// unattributed slot — but keeping them per-slot preserves the
	// no-bounds-branch recording path.
	HintsDelivered uint64
	HintsDropped   uint64
}

// ClassMetrics is one scheduler class's per-CPU metric set. The perCPU slice
// has ncpus+1 slots: slot 0 collects user/unattributed context (CPU -1) and
// slot c+1 collects CPU c, so a crossing from any context records without a
// bounds branch allocating or failing.
type ClassMetrics struct {
	Policy int
	Name   string
	// Tier tags which crossing tier the class runs at: "builtin" (native
	// Go, no crossing), "verified" (bytecode interpreted in the kernel), or
	// "module" (full enokic message crossing). Empty when unknown.
	Tier   string
	perCPU []CPUMetrics
}

// NewClassMetrics returns a metric set for a class on an ncpus machine.
func NewClassMetrics(policy int, name string, ncpus int) *ClassMetrics {
	if ncpus < 1 {
		ncpus = 1
	}
	return &ClassMetrics{Policy: policy, Name: name, perCPU: make([]CPUMetrics, ncpus+1)}
}

// CPU returns the metric slot for a CPU id; -1 (user context) and any
// out-of-range id map to the unattributed slot.
func (c *ClassMetrics) CPU(cpu int) *CPUMetrics {
	idx := cpu + 1
	if idx < 1 || idx >= len(c.perCPU) {
		idx = 0
	}
	return &c.perCPU[idx]
}

// NCPUs returns how many real CPU slots the set holds.
func (c *ClassMetrics) NCPUs() int { return len(c.perCPU) - 1 }

// merged folds every CPU slot of one metric into a single histogram.
func (c *ClassMetrics) merged(pick func(*CPUMetrics) *stats.LogHist) stats.LogHist {
	var out stats.LogHist
	for i := range c.perCPU {
		out.Merge(pick(&c.perCPU[i]))
	}
	return out
}

// Totals sums the counters across CPUs.
func (c *ClassMetrics) Totals() (crossings, picks, faults uint64) {
	for i := range c.perCPU {
		m := &c.perCPU[i]
		crossings += m.Crossings
		picks += m.Picks
		faults += m.Faults
	}
	return
}

// HintTotals sums the hint-accounting counters across CPUs: how many hint
// pushes the class's rings accepted and how many overflowed. Delivered plus
// dropped equals the number of Send attempts, so overload is observable
// instead of silently shedding.
func (c *ClassMetrics) HintTotals() (delivered, dropped uint64) {
	for i := range c.perCPU {
		m := &c.perCPU[i]
		delivered += m.HintsDelivered
		dropped += m.HintsDropped
	}
	return
}

// ClassSummary is the JSON-facing digest of one class's metrics, histograms
// merged across CPUs.
type ClassSummary struct {
	Policy         int           `json:"policy"`
	Name           string        `json:"name"`
	Tier           string        `json:"tier,omitempty"`
	Crossings      uint64        `json:"crossings"`
	Picks          uint64        `json:"picks"`
	Faults         uint64        `json:"faults"`
	HintsDelivered uint64        `json:"hints_delivered"`
	HintsDropped   uint64        `json:"hints_dropped"`
	DispatchLat    stats.Summary `json:"dispatch_lat_ns"`
	PickWait       stats.Summary `json:"pick_wait_ns"`
	WakeToRun      stats.Summary `json:"wake_to_run_ns"`
	QueueDepth     stats.Summary `json:"queue_depth"`
}

// Summarize reduces the class to its digest.
func (c *ClassMetrics) Summarize() ClassSummary {
	crossings, picks, faults := c.Totals()
	delivered, dropped := c.HintTotals()
	dl := c.merged(func(m *CPUMetrics) *stats.LogHist { return &m.DispatchLat })
	pw := c.merged(func(m *CPUMetrics) *stats.LogHist { return &m.PickWait })
	wr := c.merged(func(m *CPUMetrics) *stats.LogHist { return &m.WakeToRun })
	qd := c.merged(func(m *CPUMetrics) *stats.LogHist { return &m.QueueDepth })
	return ClassSummary{
		Policy:         c.Policy,
		Name:           c.Name,
		Tier:           c.Tier,
		Crossings:      crossings,
		Picks:          picks,
		Faults:         faults,
		HintsDelivered: delivered,
		HintsDropped:   dropped,
		DispatchLat:    dl.Summarize(),
		PickWait:       pw.Summarize(),
		WakeToRun:      wr.Summarize(),
		QueueDepth:     qd.Summarize(),
	}
}

// Set holds the ClassMetrics of every scheduler class in a run. Classes must
// be registered (Register or Class) before the hot path records into them —
// registration is the only allocating operation.
type Set struct {
	byPolicy map[int]*ClassMetrics
	ncpus    int
}

// NewSet returns an empty metric set for an ncpus machine.
func NewSet(ncpus int) *Set {
	if ncpus < 1 {
		ncpus = 1
	}
	return &Set{byPolicy: make(map[int]*ClassMetrics), ncpus: ncpus}
}

// Register pre-creates (or renames) the metric set for a class. Call it at
// class-registration time so the hot path never needs to.
func (s *Set) Register(policy int, name string) *ClassMetrics {
	if c, ok := s.byPolicy[policy]; ok {
		if name != "" {
			c.Name = name
		}
		return c
	}
	c := NewClassMetrics(policy, name, s.ncpus)
	s.byPolicy[policy] = c
	return c
}

// RegisterTiered is Register plus the crossing-tier tag (see
// ClassMetrics.Tier). The kernel uses it so every class's summaries carry
// the tier dimension the crossing-cost ablation reports on.
func (s *Set) RegisterTiered(policy int, name, tier string) *ClassMetrics {
	c := s.Register(policy, name)
	if tier != "" {
		c.Tier = tier
	}
	return c
}

// Class returns the metric set for a policy, creating it on first use. The
// lookup itself does not allocate; only a first-time create does.
func (s *Set) Class(policy int) *ClassMetrics {
	if c, ok := s.byPolicy[policy]; ok {
		return c
	}
	return s.Register(policy, fmt.Sprintf("policy-%d", policy))
}

// Has reports whether a class is registered without creating it.
func (s *Set) Has(policy int) bool {
	_, ok := s.byPolicy[policy]
	return ok
}

// Classes returns the registered classes sorted by policy id, so iteration
// order — and everything rendered from it — is deterministic.
func (s *Set) Classes() []*ClassMetrics {
	out := make([]*ClassMetrics, 0, len(s.byPolicy))
	for _, c := range s.byPolicy {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Policy < out[j].Policy })
	return out
}

// Summaries returns every class digest, sorted by policy id.
func (s *Set) Summaries() []ClassSummary {
	cls := s.Classes()
	out := make([]ClassSummary, 0, len(cls))
	for _, c := range cls {
		out = append(out, c.Summarize())
	}
	return out
}

// Table renders the digests as an aligned text table for CLI output.
func (s *Set) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %10s %10s %8s %10s %9s %14s %14s %14s %10s\n",
		"class", "crossings", "picks", "faults", "hints", "hintdrop",
		"dispatch p50", "pickwait p50", "wake2run p50", "depth p90")
	for _, cs := range s.Summaries() {
		fmt.Fprintf(&b, "%-12s %10d %10d %8d %10d %9d %12dns %12dns %12dns %10d\n",
			cs.Name, cs.Crossings, cs.Picks, cs.Faults,
			cs.HintsDelivered, cs.HintsDropped,
			cs.DispatchLat.P50, cs.PickWait.P50, cs.WakeToRun.P50,
			cs.QueueDepth.P90)
	}
	return b.String()
}
