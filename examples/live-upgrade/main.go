// Live upgrade: replace a running scheduler without stopping its tasks
// (§3.2, §5.7).
//
// A WFQ scheduler runs a set of latency-sensitive tasks. Mid-run, the
// module is upgraded to a new version: the framework quiesces it behind the
// module RW-lock, the old version exports its state through
// reregister_prepare, the new version adopts it in reregister_init, and the
// dispatch pointer swaps. Tasks never notice beyond a µs-scale blackout.
//
//	go run ./examples/live-upgrade
package main

import (
	"fmt"
	"time"

	"enoki"
)

const (
	policyCFS = 0
	policyWFQ = 1
)

func main() {
	sys := enoki.NewSystem(enoki.WithMachine(enoki.Machine8()))
	ad, err := sys.Attach(policyWFQ, enoki.GoModule(
		func(env enoki.Env) enoki.Scheduler { return enoki.NewWFQScheduler(env, policyWFQ) }))
	if err != nil {
		panic(err)
	}
	sys.RegisterCFS(policyCFS)
	k := sys.Kernel()

	// Latency-sensitive tasks: sleep 90µs, run 10µs, repeat; we watch
	// their wakeup latency across the upgrade.
	var worst time.Duration
	completed := 0
	for i := 0; i < 6; i++ {
		k.Spawn("service", policyWFQ, enoki.BehaviorFunc(
			func(k *enoki.Kernel, t *enoki.Task) enoki.Action {
				completed++
				return enoki.Action{Run: 10 * time.Microsecond, Op: enoki.OpSleep,
					SleepFor: 90 * time.Microsecond}
			}),
			enoki.WithWakeObserver(func(d time.Duration) {
				if d > worst {
					worst = d
				}
			}))
	}

	// Plus CPU-bound tasks so the run queues are never empty.
	for i := 0; i < 4; i++ {
		k.Spawn("batch", policyWFQ, enoki.BehaviorFunc(
			func(k *enoki.Kernel, t *enoki.Task) enoki.Action {
				return enoki.Action{Run: 500 * time.Microsecond, Op: enoki.OpContinue}
			}))
	}

	k.RunFor(20 * time.Millisecond)
	before := completed
	worst = 0

	oldSched := ad.Scheduler()
	var rep enoki.UpgradeReport
	sys.Engine().After(0, func() {
		ad.Upgrade(func(env enoki.Env) enoki.Scheduler {
			// "Version 2" — same policy here; real upgrades change
			// the algorithm and adopt the exported state capsule.
			return enoki.NewWFQScheduler(env, policyWFQ)
		}, func(r enoki.UpgradeReport) { rep = r })
	})
	k.RunFor(20 * time.Millisecond)

	fmt.Printf("upgrade blackout:      %v of simulated service interruption\n", rep.Blackout)
	fmt.Printf("module swap (host):    %v of Go time in prepare+init+swap\n", rep.WallSwap)
	fmt.Printf("calls deferred:        %d delivered to the new module after the swap\n", rep.DeferredDelivered)
	fmt.Printf("module replaced:       %v\n", ad.Scheduler() != oldSched)
	fmt.Printf("service iterations:    %d before, %d after (none lost)\n", before, completed-before)
	fmt.Printf("worst wakeup latency around the upgrade: %v\n", worst)
	if st := ad.Stats(); st.PntErrs != 0 {
		fmt.Printf("WARNING: %d invalid picks\n", st.PntErrs)
	}
}
