package nest

import (
	"testing"

	"enoki/internal/core"
	"enoki/internal/schedtest"
)

func unit() (*Sched, *schedtest.Env) {
	env := schedtest.NewEnv(4)
	return New(env, 3), env
}

func TestUnitStartsWithOneCore(t *testing.T) {
	s, _ := unit()
	if s.NestSize() != 1 {
		t.Fatalf("initial nest = %d", s.NestSize())
	}
	// First placements go to core 0 while it has headroom.
	s.TaskNew(1, 0, false, nil, nil)
	if got := s.SelectTaskRQ(1, 3, true); got != 0 {
		t.Fatalf("first placement = %d", got)
	}
}

func TestUnitExpandsWhenSaturated(t *testing.T) {
	s, _ := unit()
	// Fill core 0: one running, one queued.
	s.TaskNew(1, 0, true, nil, schedtest.Tok(1, 0, 1))
	s.TaskNew(2, 0, true, nil, schedtest.Tok(2, 0, 1))
	s.PickNextTask(0, nil, 0)
	s.TaskNew(3, 0, false, nil, nil)
	got := s.SelectTaskRQ(3, 0, true)
	if got == 0 {
		t.Fatal("placed onto a saturated core")
	}
	if s.NestSize() != 2 || s.Expansions != 1 {
		t.Fatalf("nest = %d, expansions = %d", s.NestSize(), s.Expansions)
	}
}

func TestUnitToleratesOneWaiter(t *testing.T) {
	s, _ := unit()
	s.TaskNew(1, 0, true, nil, schedtest.Tok(1, 0, 1))
	s.PickNextTask(0, nil, 0)
	// One running, none queued: next placement shares core 0.
	s.TaskNew(2, 0, false, nil, nil)
	if got := s.SelectTaskRQ(2, 1, true); got != 0 {
		t.Fatalf("compactness bias broken: placed on %d", got)
	}
	if s.NestSize() != 1 {
		t.Fatalf("nest grew prematurely: %d", s.NestSize())
	}
}

func TestUnitShrinksAfterIdleSelects(t *testing.T) {
	s, _ := unit()
	// Expand to two cores.
	s.TaskNew(1, 0, true, nil, schedtest.Tok(1, 0, 1))
	s.TaskNew(2, 0, true, nil, schedtest.Tok(2, 0, 1))
	s.PickNextTask(0, nil, 0)
	s.TaskNew(3, 0, false, nil, nil)
	s.SelectTaskRQ(3, 0, true)
	if s.NestSize() != 2 {
		t.Fatalf("setup: nest = %d", s.NestSize())
	}
	// Drain everything; repeated placements of a single light task age
	// the now-idle second core until it demotes.
	s.TaskDead(1)
	s.TaskDead(2)
	for i := 0; i < 2000 && s.NestSize() > 1; i++ {
		s.SelectTaskRQ(3, 0, true)
	}
	if s.NestSize() != 1 || s.Shrinks == 0 {
		t.Fatalf("nest did not shrink: size=%d shrinks=%d", s.NestSize(), s.Shrinks)
	}
}

func TestUnitLifecycle(t *testing.T) {
	s, _ := unit()
	proof := schedtest.Tok(1, 0, 1)
	s.TaskNew(1, 0, true, nil, proof)
	got := s.PickNextTask(0, nil, 0)
	if got != proof {
		t.Fatalf("pick = %v", got)
	}
	s.PntErr(0, 1, core.PickWrongCPU, got)
	if s.PickNextTask(0, nil, 0) != got {
		t.Fatal("pnt_err token lost")
	}
	s.TaskPreempt(1, 0, 0, true, schedtest.Tok(1, 0, 2))
	s.PickNextTask(0, nil, 0)
	s.TaskYield(1, 0, 0, schedtest.Tok(1, 0, 3))
	s.PickNextTask(0, nil, 0)
	s.TaskBlocked(1, 0, 0)
	s.TaskWakeup(1, 0, true, 0, 0, schedtest.Tok(1, 0, 4))
	old := s.MigrateTaskRQ(1, 1, schedtest.Tok(1, 1, 5))
	if old == nil || old.Gen() != 4 {
		t.Fatalf("migrate old = %v", old)
	}
	dep := s.TaskDeparted(1, 1)
	if dep == nil || dep.Gen() != 5 {
		t.Fatalf("departed = %v", dep)
	}
	s.TaskDead(99)
}

func TestUnitUpgradeKeepsNest(t *testing.T) {
	s, env := unit()
	s.TaskNew(1, 0, true, nil, schedtest.Tok(1, 0, 1))
	out := s.ReregisterPrepare()
	s2 := New(env, 3)
	s2.ReregisterInit(&core.TransferIn{State: out.State})
	if got := s2.PickNextTask(0, nil, 0); got == nil || got.PID() != 1 {
		t.Fatal("state lost across upgrade")
	}
}
