package experiments

import (
	"bytes"
	"fmt"
	"time"

	"enoki/internal/core"
	"enoki/internal/kernel"
	"enoki/internal/record"
	"enoki/internal/replay"
	"enoki/internal/sched/wfq"
	"enoki/internal/workload"
)

// RecordReplayResult reproduces §5.8: the perf pipe benchmark on the WFQ
// scheduler run natively, under record, and replayed at userspace.
type RecordReplayResult struct {
	Messages     int
	NativeTime   time.Duration // simulated
	RecordTime   time.Duration // simulated
	RecordRatio  float64
	LogEntries   uint64
	LogDropped   uint64
	ReplayParse  time.Duration // host wall clock
	ReplayRun    time.Duration // host wall clock
	ReplayedMsgs int
	Divergences  int
}

// Name implements the experiment naming convention.
func (r *RecordReplayResult) Name() string { return "recordreplay" }

func (r *RecordReplayResult) String() string {
	return fmt.Sprintf(`Record and replay (§5.8): perf pipe on the Enoki WFQ scheduler, %d messages
  native run:       %v (simulated)
  record-mode run:  %v (simulated)  → %.1fx slower  [paper: ~4s → ~30s, 7.5x]
  log:              %d entries, %d dropped
  replay (host):    parse %v + replay %v, %d messages, %d divergences
  replay is dominated by blocking threads until their recorded lock turn,
  as §5.8 observes of the original system.
`, r.Messages, r.NativeTime, r.RecordTime, r.RecordRatio,
		r.LogEntries, r.LogDropped, r.ReplayParse, r.ReplayRun,
		r.ReplayedMsgs, r.Divergences)
}

// RecordReplay runs the three phases.
func RecordReplay(o Options) *RecordReplayResult {
	messages := scaleInt(o, 2000, 300)
	res := &RecordReplayResult{Messages: messages}

	pipe := func(rec bool) (time.Duration, *record.Recorder, *bytes.Buffer) {
		r := NewRig(kernel.Machine8(), KindWFQ)
		var recorder *record.Recorder
		var buf bytes.Buffer
		if rec {
			recorder = record.New(r.K, &buf, PolicyCFS, record.DefaultCosts())
			r.Adapter.SetRecorder(recorder)
		}
		pr := workload.RunPipe(r.K, workload.PipeConfig{
			Policy: PolicyEnoki, Messages: messages, SameCore: true,
		})
		if recorder != nil {
			recorder.Close()
		}
		return pr.Total, recorder, &buf
	}

	res.NativeTime, _, _ = pipe(false)
	recTime, recorder, buf := pipe(true)
	res.RecordTime = recTime
	res.RecordRatio = float64(recTime) / float64(res.NativeTime)
	res.LogEntries = recorder.Entries
	res.LogDropped = recorder.Dropped

	rres, err := replay.Replay(bytes.NewReader(buf.Bytes()),
		replay.Config{NumCPUs: 8},
		func(env core.Env) core.Scheduler { return wfq.New(env, PolicyEnoki) })
	if err == nil {
		res.ReplayParse = rres.ParseTime
		res.ReplayRun = rres.Elapsed
		res.ReplayedMsgs = rres.Messages
		res.Divergences = len(rres.Divergences)
	}
	return res
}
