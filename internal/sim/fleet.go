// Fleet is the cluster-level generalization of the Sharded epoch-merge
// executor: where Sharded runs N engines (shards of one machine) under a
// deterministic message-merge protocol, Fleet runs N whole simulations —
// anything implementing FleetNode, in practice one sharded machine per node
// plus a control-plane engine — under the same protocol one level up. The
// lookahead is the network latency: no cross-machine message is faster, so
// an epoch of that length can run every machine to the boundary with no
// machine observing another's state.
//
// The merge ordering is the same (at, to, from, seq) total order Sharded
// uses, with one generalization: message sources are registered explicitly
// (AddSource) rather than being the node index, so one machine can expose
// several independent send contexts — one per internal shard — and a send
// from any of them is race-free under both the fleet's and the machine's
// parallel drive. Ties at one instant break by destination node, then source
// id, then per-source send sequence; every sequence counter is monotonic for
// the life of the executor (never reset between epochs or runs), which is
// what makes the order total and the serial and parallel fleet drives
// byte-identical.
//
// Delivery differs from Sharded in one way: a committed message's closure
// runs on the coordinator goroutine at the epoch boundary, while every node
// is quiescent at the global floor. The closure's job is to hand the payload
// to the destination node's own deterministic executor (Sharded.Inject,
// Engine.PostAt) for execution at the delivery instant inside that node's
// context — the fleet commits, the node executes.
//
// Fail-stop machine failure is part of the protocol: Kill freezes a node at
// the current floor. A dead node no longer advances, its pending events
// never fire, and messages addressed to it are dropped at commitment time
// (counted in MsgsDropped). Because kills are delivered as ordinary messages
// they land on an epoch boundary at the same virtual instant in serial and
// parallel drives, so a machine-failure campaign is as reproducible as a
// healthy run.
package sim

import (
	"fmt"

	"enoki/internal/ktime"
)

// FleetNode is one member simulation of a Fleet: it can report its clock and
// earliest pending work, and advance deterministically to a bound (moving
// its clock to exactly the bound even when idle, like Engine.RunUntil).
// Engine, Sharded, and kernel.ShardedKernel all satisfy it.
type FleetNode interface {
	Now() ktime.Time
	RunUntil(t ktime.Time)
	NextEventTime() (ktime.Time, bool)
}

// Fleet runs N FleetNodes under the epoch-merge protocol.
type Fleet struct {
	nodes     []FleetNode
	dead      []bool
	lookahead ktime.Duration
	parallel  bool
	now       ktime.Time // global floor: every live node clock sits here between epochs

	pending   []smsg   // undelivered messages, sorted by (at, to, from, seq)
	floorMsgs int      // pending non-handoff messages (each chops an epoch window)
	out       [][]smsg // per-source outboxes, owned by the source's node during an epoch
	sendSeq   []uint64 // per-source monotonic counters — never reset (ordering audit)
	srcNode   []int    // source id → owning node

	// Worker goroutines for the parallel drive, started lazily.
	started bool
	cmds    []chan ktime.Time
	ack     chan struct{}

	epochs    uint64
	delivered uint64
	dropped   uint64
}

// NewFleet builds a fleet executor with the given lookahead: the minimum
// virtual-time latency of every cross-node message — physically the network
// latency — and therefore the epoch length.
func NewFleet(lookahead ktime.Duration) *Fleet {
	if lookahead <= 0 {
		panic("sim: NewFleet needs a positive lookahead")
	}
	return &Fleet{lookahead: lookahead}
}

// AddNode registers a member simulation and returns its node index. Nodes
// must be added before the first run.
func (f *Fleet) AddNode(n FleetNode) int {
	if f.now != 0 || f.epochs != 0 {
		panic("sim: Fleet.AddNode after the fleet started running")
	}
	f.nodes = append(f.nodes, n)
	f.dead = append(f.dead, false)
	return len(f.nodes) - 1
}

// AddSource allocates a send context owned by node. Sends from one source
// must be serialized by the caller (use one source per independent execution
// context — e.g. one per internal shard of a machine); distinct sources are
// independent and may send concurrently.
func (f *Fleet) AddSource(node int) int {
	f.out = append(f.out, nil)
	f.sendSeq = append(f.sendSeq, 0)
	f.srcNode = append(f.srcNode, node)
	return len(f.out) - 1
}

// NumNodes returns the member count.
func (f *Fleet) NumNodes() int { return len(f.nodes) }

// Node returns member i.
func (f *Fleet) Node(i int) FleetNode { return f.nodes[i] }

// Lookahead returns the epoch length / minimum cross-node latency.
func (f *Fleet) Lookahead() ktime.Duration { return f.lookahead }

// Now returns the global virtual-time floor.
func (f *Fleet) Now() ktime.Time { return f.now }

// Epochs returns how many merge rounds have run.
func (f *Fleet) Epochs() uint64 { return f.epochs }

// MsgsSent returns how many cross-node messages were submitted. Read it
// between runs.
func (f *Fleet) MsgsSent() uint64 {
	var n uint64
	for _, sq := range f.sendSeq {
		n += sq
	}
	return n
}

// MsgsDelivered returns how many cross-node messages were committed.
func (f *Fleet) MsgsDelivered() uint64 { return f.delivered }

// MsgsDropped returns how many messages were dropped because their
// destination node was dead at commitment time.
func (f *Fleet) MsgsDropped() uint64 { return f.dropped }

// Alive reports whether node i has not been killed.
func (f *Fleet) Alive(i int) bool { return !f.dead[i] }

// Kill freezes node i at the current floor: it stops advancing, its pending
// events never fire, and undelivered messages addressed to it are dropped.
// Call it from a commitment closure (the deterministic way to fail a machine
// at a virtual instant — send a message to the victim whose closure calls
// Kill) or between runs. Killing a dead node is a no-op.
func (f *Fleet) Kill(i int) { f.dead[i] = true }

// SetParallel selects the drive mode: true fans each epoch out to one worker
// goroutine per node, false runs nodes in index order on the caller's
// goroutine. Both produce bit-identical simulations.
func (f *Fleet) SetParallel(on bool) { f.parallel = on }

// Send submits fn for commitment toward node `to` at absolute virtual time
// `at`. It must be called from source src's execution context (or between
// runs), and `at` must be at least the source node's now plus the lookahead.
// The closure runs on the coordinator at the first productive point at or
// after `at`, with every node quiescent at the global floor — so it may
// observe fleet and node state as of the delivery instant (Kill rides a
// plain Send for exactly this reason). Each distinct Send instant ends an
// epoch window; high-rate traffic whose closures are pure handoffs should
// use SendHandoff instead, which commits early and keeps the windows wide.
func (f *Fleet) Send(src, to int, at ktime.Time, fn func()) {
	f.send(src, to, at, fn, false)
}

// SendHandoff is Send for pure-handoff commitments: fn must confine itself
// to scheduling work on the destination node's executor at `at`
// (Sharded.Inject, Engine.PostAt) without reading any simulation state at
// commitment time. In exchange, the fleet may commit it up to a whole epoch
// window early — the destination executor runs the payload at `at` either
// way, but the epoch loop no longer chops a window (and pays a full fleet
// scan) per message instant. This is the hot path for cluster-scale
// traffic; anything whose closure observes the floor stays on Send.
func (f *Fleet) SendHandoff(src, to int, at ktime.Time, fn func()) {
	f.send(src, to, at, fn, true)
}

func (f *Fleet) send(src, to int, at ktime.Time, fn func(), handoff bool) {
	nd := f.srcNode[src]
	if min := f.nodes[nd].Now().Add(f.lookahead); at < min {
		panic(fmt.Sprintf("sim: fleet send at %v under lookahead floor %v (source %d on node %d → %d)",
			at, min, src, nd, to))
	}
	f.sendSeq[src]++
	f.out[src] = append(f.out[src], smsg{at: at, to: to, from: src, seq: f.sendSeq[src], fn: fn, handoff: handoff})
}

// deliver commits every pending message due at or before upTo, in merge
// order, on the coordinator goroutine. Messages to dead nodes are dropped;
// a commitment may itself Kill a node, affecting later messages in the same
// batch (the order is fixed, so this too is deterministic).
func (f *Fleet) deliver(upTo ktime.Time) {
	n := 0
	for n < len(f.pending) && f.pending[n].at <= upTo {
		n++
	}
	for j := 0; j < n; j++ {
		m := f.pending[j]
		f.pending[j].fn = nil
		if !m.handoff {
			f.floorMsgs--
		}
		if f.dead[m.to] {
			f.dropped++
			continue
		}
		f.delivered++
		m.fn()
	}
	if n > 0 {
		rest := copy(f.pending, f.pending[n:])
		for j := rest; j < len(f.pending); j++ {
			f.pending[j] = smsg{}
		}
		f.pending = f.pending[:rest]
	}
}

// collect merges every outbox into the pending set and restores the merge
// order.
func (f *Fleet) collect() {
	sorted := len(f.pending)
	for i := range f.out {
		if len(f.out[i]) > 0 {
			for _, m := range f.out[i] {
				if !m.handoff {
					f.floorMsgs++
				}
			}
			f.pending = append(f.pending, f.out[i]...)
			for j := range f.out[i] {
				f.out[i][j] = smsg{}
			}
			f.out[i] = f.out[i][:0]
		}
	}
	if len(f.pending) > sorted {
		mergeNewSmsgs(f.pending, sorted)
	}
}

// nextFloorMsg returns the due time of the earliest pending non-handoff
// message, or maxTime when none exists. On the cluster hot path nearly all
// traffic is handoffs, so the scan is guarded by the count.
func (f *Fleet) nextFloorMsg() ktime.Time {
	if f.floorMsgs == 0 {
		return maxTime
	}
	for i := range f.pending {
		if !f.pending[i].handoff {
			return f.pending[i].at
		}
	}
	return maxTime
}

// minNextEvent returns the earliest pending work across live nodes. Dead
// nodes are excluded: their events are frozen and must not hold the loop
// open.
func (f *Fleet) minNextEvent() (ktime.Time, bool) {
	best, ok := maxTime, false
	for i, n := range f.nodes {
		if f.dead[i] {
			continue
		}
		if t, has := n.NextEventTime(); has && t < best {
			best, ok = t, true
		}
	}
	return best, ok
}

// runEpoch advances every live node to end, in parallel or serially.
func (f *Fleet) runEpoch(end ktime.Time) {
	f.epochs++
	if !f.parallel {
		for i, n := range f.nodes {
			if !f.dead[i] {
				n.RunUntil(end)
			}
		}
		return
	}
	if !f.started {
		f.cmds = make([]chan ktime.Time, len(f.nodes))
		f.ack = make(chan struct{}, len(f.nodes))
		for i := range f.nodes {
			f.cmds[i] = make(chan ktime.Time)
			i := i
			go func() {
				for end := range f.cmds[i] {
					f.nodes[i].RunUntil(end)
					f.ack <- struct{}{}
				}
			}()
		}
		f.started = true
	}
	sent := 0
	for i := range f.cmds {
		if !f.dead[i] {
			f.cmds[i] <- end
			sent++
		}
	}
	for ; sent > 0; sent-- {
		<-f.ack
	}
}

// run is the epoch loop, structurally identical to Sharded.run: deliver due
// messages, pick the next productive window, run it, merge the outboxes.
func (f *Fleet) run(t ktime.Time, advance bool) {
	f.collect()
	for {
		if len(f.pending) > 0 && f.pending[0].at <= f.now {
			f.deliver(f.now)
			continue
		}
		nextMsg := maxTime
		if len(f.pending) > 0 {
			nextMsg = f.pending[0].at
		}
		nextEv, hasEv := f.minNextEvent()
		next := nextMsg
		if hasEv && nextEv < next {
			next = nextEv
		}
		if next > t || next == maxTime {
			break
		}
		start := f.now
		if next > start {
			start = next
		}
		if nextMsg <= start {
			f.deliver(start)
			continue
		}
		end := start.Add(f.lookahead)
		if end > t {
			end = t
		}
		// Only floor-observing messages chop the window: their closures may
		// read state as of their instant, so they must run with the fleet at
		// exactly that point. Handoff messages due inside the window are
		// committed before the epoch launches — each one hands its work to
		// the destination executor stamped with its own due time, so the
		// outcome is identical to committing at the exact floor, without an
		// epoch boundary (and a full fleet scan) per message time.
		if nf := f.nextFloorMsg(); nf < end {
			end = nf
		}
		if len(f.pending) > 0 && f.pending[0].at < end {
			f.deliver(end - 1)
		}
		f.runEpoch(end)
		f.collect()
		f.now = end
	}
	if advance && f.now < t {
		f.runEpoch(t)
		f.collect()
		f.now = t
	}
}

// RunUntil executes the fleet up to and including virtual time t; every live
// node's clock finishes at exactly t.
func (f *Fleet) RunUntil(t ktime.Time) { f.run(t, true) }

// RunUntilIdle executes until no live node has a pending event and no
// message is in flight.
func (f *Fleet) RunUntilIdle() { f.run(maxTime, false) }

// Close stops the worker goroutines of the parallel drive. The executor
// remains usable in serial mode afterwards; Close is idempotent.
func (f *Fleet) Close() {
	if !f.started {
		return
	}
	for i := range f.cmds {
		close(f.cmds[i])
	}
	f.started = false
	f.cmds = nil
}
