// Package cluster simulates a fleet of machines under one deterministic
// clock: N sharded kernel stacks (one per machine, each a full Enoki
// simulation) plus a control-plane engine, all members of a sim.Fleet whose
// lookahead is the network latency. The control plane is a cluster job
// scheduler in the jobScheduler/transformer/agent mold — a placer computes
// desired placements, a reconciler diffs desired against actual state and
// emits start/stop operations, and per-machine agents execute them — with
// every cross-machine interaction riding the fleet's (at, to, from, seq)
// merge order. Serial and worker-goroutine fleet drives therefore produce
// byte-identical per-machine simulations, including under machine failure:
// kills land on epoch boundaries, the failure detector fires a fixed delay
// later, and lost jobs restart from their last checkpoint.
package cluster

import (
	"errors"
	"fmt"
	"time"

	"enoki/internal/enokic"
	"enoki/internal/kernel"
	"enoki/internal/ktime"
	"enoki/internal/overload"
	"enoki/internal/sim"
)

// ErrClosed is returned (wrapped) by operations on a closed cluster.
var ErrClosed = errors.New("cluster closed")

// Config sizes and parameterizes a cluster. The zero value of every field
// except Machines takes a sensible default.
type Config struct {
	// Machines is the fleet size; required.
	Machines int
	// Machine is the per-machine topology (default kernel.Machine8). Every
	// machine shards by NUMA node exactly as a standalone ShardedKernel
	// would.
	Machine kernel.Machine
	// NetLatency is the minimum cross-machine message latency and therefore
	// the fleet epoch length (default 50µs).
	NetLatency time.Duration
	// ReconcileEvery is the control-plane reconcile interval (default
	// 200µs).
	ReconcileEvery time.Duration
	// DetectDelay is the failure detector's bound: a machine killed at T is
	// declared dead at T+DetectDelay (default 500µs).
	DetectDelay time.Duration
	// Placer is the placement policy (default LeastLoaded).
	Placer Placer
	// RebalanceSpread, when positive, migrates one job per reconcile tick
	// from the most to the least loaded machine whenever their
	// assigned-job counts differ by more than this. Zero disables
	// rebalancing.
	RebalanceSpread int
	// Policy is the scheduler class id jobs spawn into (default 0, the CFS
	// class the default setup registers).
	Policy int
	// Parallel drives the fleet on one worker goroutine per machine;
	// serial and parallel drives are byte-identical.
	Parallel bool
	// Setup, when set, replaces the default per-shard CFS registration: it
	// runs once per machine at construction and must register a class
	// under Policy on every shard (recorders and extra instrumentation
	// attach here too).
	Setup func(machine int, sk *kernel.ShardedKernel)
	// SetupModules is Setup's upgradable variant: it must register a class
	// under Policy on every shard and return the per-shard enokic adapters
	// (index = shard, nil for shards without an upgradable module). Only
	// machines built this way are rollout targets — the fleet rollout
	// machinery drives their adapters' UpgradeTo/Rollback as cluster
	// actions. Takes precedence over Setup.
	SetupModules func(machine int, sk *kernel.ShardedKernel) []*enokic.Adapter
	// Admission, when non-empty, builds the cluster's overload controller:
	// jobs offered through Offer pass per-class admission with load
	// shedding and bounded retry before they reach the placer. Submit
	// bypasses admission.
	Admission []overload.ClassConfig
}

func (c Config) withDefaults() Config {
	if c.Machine.NumCPUs == 0 {
		c.Machine = kernel.Machine8()
	}
	if c.NetLatency <= 0 {
		c.NetLatency = 50 * time.Microsecond
	}
	if c.ReconcileEvery <= 0 {
		c.ReconcileEvery = 200 * time.Microsecond
	}
	if c.DetectDelay <= 0 {
		c.DetectDelay = 500 * time.Microsecond
	}
	if c.Placer == nil {
		c.Placer = LeastLoaded{}
	}
	return c
}

// Cluster is a simulated fleet plus its control plane.
type Cluster struct {
	cfg      Config
	fl       *sim.Fleet
	ctrl     *sim.Engine
	ctrlNode int
	ctrlSrc  int
	machines []*Machine
	sched    *jobScheduler
	rollout  *Rollout
	adm      *overload.Controller
	jobClass map[int]int // job id → admission class, for jobs that entered via Offer
	closed   bool
}

// New builds a cluster: fleet node 0 is the control-plane engine, nodes
// 1..Machines are sharded kernel stacks.
func New(cfg Config) *Cluster {
	cfg = cfg.withDefaults()
	if cfg.Machines < 1 {
		panic("cluster: Config.Machines must be at least 1")
	}
	c := &Cluster{cfg: cfg, fl: sim.NewFleet(ktime.Duration(cfg.NetLatency)), ctrl: sim.New()}
	if len(cfg.Admission) > 0 {
		c.adm = overload.New(overload.Config{Classes: cfg.Admission})
		c.jobClass = make(map[int]int)
	}
	c.ctrlNode = c.fl.AddNode(c.ctrl)
	c.ctrlSrc = c.fl.AddSource(c.ctrlNode)
	for i := 0; i < cfg.Machines; i++ {
		c.machines = append(c.machines, newMachine(c, i))
	}
	c.sched = newJobScheduler(c)
	c.fl.SetParallel(cfg.Parallel)
	return c
}

// Submit registers a job and returns its id. Call it between runs (or from
// a control-plane event); the job is placed on the next reconcile tick.
func (c *Cluster) Submit(spec JobSpec) int {
	if c.closed {
		panic("cluster: Submit on a closed cluster")
	}
	spec = spec.withDefaults()
	id := len(c.sched.jobs)
	c.sched.jobs = append(c.sched.jobs, &Job{
		ID: id, Spec: spec, State: JobPending,
		Machine: -1, Desired: -1,
		CyclesLeft:  spec.Cycles,
		SubmittedAt: c.ctrl.Now(),
	})
	c.sched.queue = append(c.sched.queue, id)
	c.sched.live++
	c.sched.arm()
	return id
}

// FailMachine schedules a fail-stop crash of machine mi at absolute
// virtual time at (which must be at least one network latency in the
// future): the machine freezes at the epoch boundary of that instant, and
// the control plane detects the death DetectDelay later. Call it between
// runs, before advancing past at.
func (c *Cluster) FailMachine(mi int, at time.Duration) {
	if c.closed {
		panic("cluster: FailMachine on a closed cluster")
	}
	if mi < 0 || mi >= len(c.machines) {
		panic(fmt.Sprintf("cluster: FailMachine(%d) out of range", mi))
	}
	t := ktime.Time(0).Add(ktime.Duration(at))
	node := c.machines[mi].node
	// Kill must observe the fleet floor exactly at the failure instant — the
	// victim advances to t and no further — so it rides a plain Send, whose
	// commitments run at the floor (unlike the handoff fast path).
	c.fl.Send(c.ctrlSrc, node, t, func() { c.fl.Kill(node) })
	c.ctrl.PostAt(t.Add(ktime.Duration(c.cfg.DetectDelay)), func() { c.sched.machineDead(mi) })
}

// Run advances the whole cluster by d of virtual time.
func (c *Cluster) Run(d time.Duration) {
	if c.closed {
		panic("cluster: Run on a closed cluster")
	}
	c.fl.RunUntil(c.fl.Now().Add(ktime.Duration(d)))
}

// RunUntilIdle advances until no machine has pending work, no message is in
// flight, and the control plane has gone quiescent — i.e. every completable
// job is Done. Jobs stranded Pending with no machine alive do not hold the
// cluster open.
func (c *Cluster) RunUntilIdle() {
	if c.closed {
		panic("cluster: RunUntilIdle on a closed cluster")
	}
	c.fl.RunUntilIdle()
}

// Now returns the fleet's virtual-time floor.
func (c *Cluster) Now() ktime.Time { return c.fl.Now() }

// NumMachines returns the fleet size (control plane excluded).
func (c *Cluster) NumMachines() int { return len(c.machines) }

// Machine returns machine i's agent.
func (c *Cluster) Machine(i int) *Machine { return c.machines[i] }

// Fleet returns the underlying executor, for counters and advanced drives.
func (c *Cluster) Fleet() *sim.Fleet { return c.fl }

// Job returns a copy of job id's control-plane record.
func (c *Cluster) Job(id int) Job { return *c.sched.jobs[id] }

// NumJobs returns how many jobs have been submitted.
func (c *Cluster) NumJobs() int { return len(c.sched.jobs) }

// Views returns a copy of the control plane's machine views.
func (c *Cluster) Views() []MachineView {
	out := make([]MachineView, len(c.sched.view))
	copy(out, c.sched.view)
	return out
}

// Stats is a cluster-wide roll-up. Quantiles come from always-on LogHists
// (~12% worst-case relative error).
type Stats struct {
	Submitted  int
	Done       int
	Lost       int // placements lost to machine failure (restarts)
	Migrations int // rebalance migrations completed
	StartsSent int
	StopsSent  int

	PlaceP50, PlaceP99 time.Duration // submit → first running ack
	E2EP50, E2EP99     time.Duration // submit → done

	MachinesAlive int
	TasksSpawned  uint64
	CtxSwitches   uint64
	EventsFired   uint64

	Epochs        uint64 // fleet merge rounds
	MsgsSent      uint64
	MsgsDelivered uint64
	MsgsDropped   uint64
}

// Stats assembles the roll-up. Read it between runs.
func (c *Cluster) Stats() Stats {
	s := c.sched
	st := Stats{
		Submitted: len(s.jobs), Done: s.done, Lost: s.lost,
		Migrations: s.migrations, StartsSent: s.starts, StopsSent: s.stops,
		PlaceP50: time.Duration(s.placeHist.Quantile(0.50)),
		PlaceP99: time.Duration(s.placeHist.Quantile(0.99)),
		E2EP50:   time.Duration(s.e2eHist.Quantile(0.50)),
		E2EP99:   time.Duration(s.e2eHist.Quantile(0.99)),
		Epochs:   c.fl.Epochs(),
		MsgsSent: c.fl.MsgsSent(), MsgsDelivered: c.fl.MsgsDelivered(),
		MsgsDropped: c.fl.MsgsDropped(),
	}
	for _, m := range c.machines {
		if c.fl.Alive(m.node) {
			st.MachinesAlive++
		}
		st.TasksSpawned += m.spawned
		st.CtxSwitches += m.sk.CtxSwitches()
		st.EventsFired += m.sk.EventsFired()
	}
	st.EventsFired += c.ctrl.Fired()
	return st
}

// Close shuts the cluster down: the fleet's workers and every machine's
// executor stop. Closing twice returns an error wrapping ErrClosed.
func (c *Cluster) Close() error {
	if c.closed {
		return fmt.Errorf("cluster: double Close: %w", ErrClosed)
	}
	c.closed = true
	c.fl.Close()
	for _, m := range c.machines {
		m.sk.Close()
	}
	return nil
}
