package core

import (
	"time"

	"enoki/internal/ktime"
)

// Locker is the lock handle libEnoki hands to scheduler modules. In the
// kernel it wraps the kernel lock primitives with recording shims (§3.4); in
// the simulated kernel it records create/acquire/release order; during
// replay it becomes a gating lock that blocks each thread until the recorded
// acquisition order says it is that thread's turn.
type Locker interface {
	Lock()
	Unlock()
}

// Env is the safe interface libEnoki gives scheduler modules for accessing
// kernel functionality — "such as locks and timers" (§3.1). Modules receive
// an Env at construction and must use it for every interaction that is not a
// trait callback; this is what lets the exact same module code run in the
// kernel and at userspace during replay.
type Env interface {
	// Now returns the current (virtual) time. Correct modules use the
	// runtimes delivered in messages for policy decisions; Now exists
	// for coarse bookkeeping like balance intervals.
	Now() ktime.Time

	// NumCPUs returns the machine's CPU count.
	NumCPUs() int

	// SameNode reports whether two CPUs share a NUMA node. It is
	// shorthand for Topology().SameNode and kept for module convenience.
	SameNode(a, b int) bool

	// Topology returns the machine's scheduling-domain structure: the
	// LLC domain of each CPU, its siblings, and pairwise distances.
	// The returned value is immutable and shared; environments that have
	// no real topology (replay without a recorded one, unit-test fakes)
	// return a flat single-domain topology.
	Topology() *Topology

	// ArmTimer arms cpu's reschedule timer d from now, replacing any
	// previous timer (Shinjuku's µs-scale preemption uses this).
	ArmTimer(cpu int, d time.Duration)

	// Resched requests a reschedule on cpu (wakeup preemption).
	Resched(cpu int)

	// NewMutex creates a module lock. The name labels it in record logs.
	NewMutex(name string) Locker

	// Rand returns the module's deterministic random stream.
	Rand() *ktime.Rand
}

// ReplayableEnv is the subset of Env behaviour a replay environment
// reproduces exactly; it exists for documentation (both the kernel env and
// the replay env satisfy Env).
type ReplayableEnv = Env
