package kernel

import (
	"testing"
	"testing/quick"
	"time"

	"enoki/internal/ktime"
	"enoki/internal/sim"
)

// Property-based tests over random workloads: whatever the interleaving of
// spawns, sleeps, wakes, yields, priority changes, and affinity changes,
// the kernel must conserve tasks, keep accounting consistent, and stay
// deterministic.

// randomWorkload drives a kernel with a seeded mix of task behaviours and
// runtime mutations, returning a state fingerprint.
func randomWorkload(seed uint64, m Machine) (fingerprint uint64, leaked int, panicked any) {
	defer func() { panicked = recover() }()
	eng := sim.New()
	k := New(eng, m, DefaultCosts())
	k.RegisterClass(0, NewCFS(k))
	rng := ktime.NewRand(seed)

	totalWork := time.Duration(0)
	exited := 0
	n := 4 + rng.Intn(12)
	var tasks []*Task
	for i := 0; i < n; i++ {
		segments := 3 + rng.Intn(20)
		segLen := rng.UniformDuration(20*time.Microsecond, 2*time.Millisecond)
		totalWork += time.Duration(segments) * segLen
		behavior := BehaviorFunc(func(k *Kernel, t *Task) Action {
			if segments == 0 {
				exited++
				return Action{Op: OpExit}
			}
			segments--
			switch rng.Intn(4) {
			case 0:
				return Action{Run: segLen, Op: OpContinue}
			case 1:
				return Action{Run: segLen, Op: OpYield}
			case 2:
				return Action{Run: segLen, Op: OpSleep,
					SleepFor: rng.UniformDuration(10*time.Microsecond, time.Millisecond)}
			default:
				return Action{Run: segLen, Op: OpBlock}
			}
		})
		opts := []SpawnOption{WithNice(rng.Intn(40) - 20)}
		if rng.Bernoulli(0.3) {
			opts = append(opts, WithAffinity(SingleCPU(rng.Intn(m.NumCPUs))))
		}
		tasks = append(tasks, k.Spawn("rand", 0, behavior, opts...))
	}

	// Period chaos: wake blocked tasks, change priorities and affinity.
	var chaos func()
	chaos = func() {
		for _, t := range tasks {
			if t.State() == StateBlocked && rng.Bernoulli(0.7) {
				k.Wake(t)
			}
			if t.State() != StateDead && rng.Bernoulli(0.1) {
				k.SetNice(t, rng.Intn(40)-20)
			}
			if t.State() != StateDead && rng.Bernoulli(0.05) {
				k.SetAffinity(t, AllCPUs(m.NumCPUs))
			}
		}
		eng.After(rng.UniformDuration(100*time.Microsecond, time.Millisecond), chaos)
	}
	eng.After(time.Millisecond, chaos)

	k.RunFor(2 * time.Second)

	// Fingerprint: total executed time + busy + switches.
	var sumExec time.Duration
	for _, t := range tasks {
		sumExec += t.SumExec()
	}
	var busy time.Duration
	for c := 0; c < m.NumCPUs; c++ {
		busy += k.CPUBusy(c)
	}
	fp := uint64(sumExec) ^ uint64(busy)<<1 ^ k.CtxSwitches<<2 ^ uint64(exited)<<3
	return fp, k.NumTasks(), nil
}

func TestQuickNoTaskLostCFS(t *testing.T) {
	f := func(seed uint64) bool {
		fp, leaked, panicked := randomWorkload(seed, Machine8())
		if panicked != nil {
			t.Logf("seed %d panicked: %v", seed, panicked)
			return false
		}
		_ = fp
		// All tasks must have exited: none stranded blocked forever
		// (chaos wakes blocked tasks repeatedly) or lost by the kernel.
		return leaked == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDeterminism(t *testing.T) {
	f := func(seed uint64) bool {
		a, _, p1 := randomWorkload(seed, Machine8())
		b, _, p2 := randomWorkload(seed, Machine8())
		return p1 == nil && p2 == nil && a == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickBusyAtLeastExec(t *testing.T) {
	// CPU busy time includes task execution plus overheads, so total busy
	// must be >= total task execution and the work must all complete.
	f := func(seed uint64) bool {
		eng := sim.New()
		k := New(eng, Machine8(), DefaultCosts())
		k.RegisterClass(0, NewCFS(k))
		rng := ktime.NewRand(seed)
		var tasks []*Task
		want := time.Duration(0)
		for i := 0; i < 6; i++ {
			total := rng.UniformDuration(time.Millisecond, 20*time.Millisecond)
			want += total
			remaining := total
			tasks = append(tasks, k.Spawn("w", 0, BehaviorFunc(
				func(k *Kernel, t *Task) Action {
					if remaining <= 0 {
						return Action{Op: OpExit}
					}
					c := 500 * time.Microsecond
					if c > remaining {
						c = remaining
					}
					remaining -= c
					return Action{Run: c, Op: OpContinue}
				})))
		}
		k.RunFor(time.Second)
		var sumExec, busy time.Duration
		for _, task := range tasks {
			sumExec += task.SumExec()
		}
		for c := 0; c < 8; c++ {
			busy += k.CPUBusy(c)
		}
		return sumExec == want && busy >= sumExec
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickWorkConservation(t *testing.T) {
	// With fewer CPU-bound tasks than cores, every task should finish in
	// close to its own work time (no artificial serialisation).
	f := func(seed uint64) bool {
		eng := sim.New()
		k := New(eng, Machine8(), DefaultCosts())
		k.RegisterClass(0, NewCFS(k))
		rng := ktime.NewRand(seed)
		n := 1 + rng.Intn(7)
		work := rng.UniformDuration(5*time.Millisecond, 30*time.Millisecond)
		finish := make([]ktime.Time, n)
		for i := 0; i < n; i++ {
			i := i
			remaining := work
			k.Spawn("wc", 0, BehaviorFunc(func(k *Kernel, t *Task) Action {
				if remaining <= 0 {
					finish[i] = k.Now()
					return Action{Op: OpExit}
				}
				remaining -= time.Millisecond
				return Action{Run: time.Millisecond, Op: OpContinue}
			}))
		}
		k.RunFor(5 * work)
		for i := 0; i < n; i++ {
			if finish[i] == 0 {
				return false
			}
			// Allow 25% scheduling overhead/interference slack.
			if time.Duration(finish[i]) > work+work/4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
