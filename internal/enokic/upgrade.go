package enokic

import (
	"time"

	"enoki/internal/core"
)

// UpgradeReport describes one live upgrade (§3.2, evaluated in §5.7).
type UpgradeReport struct {
	// Blackout is the simulated service interruption: the window during
	// which the module RW-lock is held in write mode and schedule
	// operations fall through to lower classes or idle.
	Blackout time.Duration
	// WallSwap is host wall-clock time spent in prepare + init + pointer
	// swap, the actual Go work of the upgrade.
	WallSwap time.Duration
	// DeferredDelivered is how many notifications queued up behind the
	// write lock and were delivered to the new module afterwards.
	DeferredDelivered int
}

// Upgrade replaces the running module with a new version built by factory,
// transferring state through reregister_prepare/reregister_init. It models
// the paper's quiesce protocol: a per-module read-write lock is taken in
// write mode, in-flight calls drain (modelled as UpgradeBase +
// UpgradePerCPU×cores of blackout), state transfers, the dispatch pointer
// swaps, and deferred calls proceed against the new module.
//
// Upgrade must be called from simulation context (inside an event or before
// Run); done fires when the upgrade completes.
func (a *Adapter) Upgrade(factory func(core.Env) core.Scheduler, done func(UpgradeReport)) {
	if a.upgrading {
		panic("enokic: concurrent upgrades")
	}
	a.upgrading = true
	a.stats.Upgrades++
	blackout := a.cfg.UpgradeBase + time.Duration(a.k.NumCPUs())*a.cfg.UpgradePerCPU
	a.k.Engine().After(blackout, func() {
		wallStart := time.Now()
		out := a.sched.ReregisterPrepare()
		next := factory(a.env)
		if next.GetPolicy() != a.policy {
			panic("enokic: upgraded module changed policy id")
		}
		var in *core.TransferIn
		if out != nil {
			in = &core.TransferIn{State: out.State}
		}
		next.ReregisterInit(in)
		a.sched = next
		wall := time.Since(wallStart)

		a.upgrading = false
		queued := a.deferred
		a.deferred = nil
		for _, m := range queued {
			a.dispatch(m)
			a.putMsg(m)
		}
		for i := range a.kickPending {
			a.kickPending[i] = false
		}
		for i := 0; i < a.k.NumCPUs(); i++ {
			a.k.Resched(i)
		}
		if done != nil {
			done(UpgradeReport{
				Blackout:          blackout,
				WallSwap:          wall,
				DeferredDelivered: len(queued),
			})
		}
	})
}

// kickAfterUpgrade notes that cpu asked for work during the blackout; the
// post-upgrade kick of all CPUs covers it, this just keeps a flag per CPU so
// the hot pick path stays cheap.
func (a *Adapter) kickAfterUpgrade(cpu int) {
	a.kickPending[cpu] = true
}
