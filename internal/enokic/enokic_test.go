package enokic

import (
	"testing"
	"time"

	"enoki/internal/core"
	"enoki/internal/kernel"
	"enoki/internal/sched/fifo"
	"enoki/internal/sched/wfq"
	"enoki/internal/sim"
)

const (
	policyCFS   = 0
	policyEnoki = 7
)

func newRig(t *testing.T, factory func(core.Env) core.Scheduler) (*kernel.Kernel, *Adapter) {
	t.Helper()
	eng := sim.New()
	k := kernel.New(eng, kernel.Machine8(), kernel.DefaultCosts())
	a := Load(k, policyEnoki, DefaultConfig(), factory)
	k.RegisterClass(policyCFS, kernel.NewCFS(k))
	return k, a
}

func fifoFactory(env core.Env) core.Scheduler { return fifo.New(env, policyEnoki) }
func wfqFactory(env core.Env) core.Scheduler  { return wfq.New(env, policyEnoki) }

func spin(total, chunk time.Duration) kernel.Behavior {
	remaining := total
	return kernel.BehaviorFunc(func(k *kernel.Kernel, t *kernel.Task) kernel.Action {
		if remaining <= 0 {
			return kernel.Action{Op: kernel.OpExit}
		}
		c := chunk
		if c > remaining {
			c = remaining
		}
		remaining -= c
		return kernel.Action{Run: c, Op: kernel.OpContinue}
	})
}

func TestFIFOTaskLifecycle(t *testing.T) {
	k, a := newRig(t, fifoFactory)
	done := 0
	for i := 0; i < 4; i++ {
		k.Spawn("w", policyEnoki, spin(5*time.Millisecond, time.Millisecond),
			kernel.WithExitObserver(func() { done++ }))
	}
	k.RunFor(100 * time.Millisecond)
	if done != 4 {
		t.Fatalf("completed %d/4 tasks", done)
	}
	if st := a.Stats(); st.PntErrs != 0 {
		t.Fatalf("unexpected pnt_errs: %+v", st)
	}
	if k.NumTasks() != 0 {
		t.Fatalf("leaked tasks: %d", k.NumTasks())
	}
}

func TestEnokiPipePingPong(t *testing.T) {
	k, a := newRig(t, wfqFactory)
	const rounds = 500
	var x, y *kernel.Task
	count := 0
	mk := func(peer **kernel.Task, starts bool) kernel.Behavior {
		started := false
		return kernel.BehaviorFunc(func(k *kernel.Kernel, t *kernel.Task) kernel.Action {
			if starts && !started {
				started = true
				return kernel.Action{Run: 200 * time.Nanosecond, Wake: []*kernel.Task{*peer}, Op: kernel.OpBlock}
			}
			count++
			if count >= 2*rounds {
				return kernel.Action{Op: kernel.OpExit}
			}
			return kernel.Action{Run: 200 * time.Nanosecond, Wake: []*kernel.Task{*peer}, Op: kernel.OpBlock}
		})
	}
	x = k.Spawn("x", policyEnoki, mk(&y, true), kernel.WithAffinity(kernel.SingleCPU(0)))
	y = k.Spawn("y", policyEnoki, mk(&x, false), kernel.WithAffinity(kernel.SingleCPU(0)))
	k.RunFor(time.Second)
	if count < 2*rounds {
		t.Fatalf("ping-pong stalled at %d", count)
	}
	if st := a.Stats(); st.PntErrs != 0 {
		t.Fatalf("pnt_errs during pipe: %+v", st)
	}
}

func TestWFQFairnessUnderEnoki(t *testing.T) {
	k, _ := newRig(t, wfqFactory)
	var tasks []*kernel.Task
	for i := 0; i < 5; i++ {
		tasks = append(tasks, k.Spawn("fair", policyEnoki,
			spin(time.Hour, time.Millisecond), kernel.WithAffinity(kernel.SingleCPU(0))))
	}
	k.RunFor(2 * time.Second)
	for _, task := range tasks {
		share := float64(task.SumExec()) / float64(2*time.Second)
		if share < 0.15 || share > 0.25 {
			t.Fatalf("%v share = %.3f, want ~0.20", task, share)
		}
	}
}

func TestWFQWeighting(t *testing.T) {
	k, _ := newRig(t, wfqFactory)
	hi := k.Spawn("hi", policyEnoki, spin(time.Hour, time.Millisecond), kernel.WithAffinity(kernel.SingleCPU(0)))
	lo := k.Spawn("lo", policyEnoki, spin(time.Hour, time.Millisecond), kernel.WithAffinity(kernel.SingleCPU(0)))
	k.SetNice(lo, 5)
	k.RunFor(2 * time.Second)
	ratio := float64(hi.SumExec()) / float64(lo.SumExec())
	if ratio < 2.2 || ratio > 4.2 {
		t.Fatalf("weighted share ratio = %.2f, want ~3", ratio)
	}
}

func TestWFQWorkStealing(t *testing.T) {
	// Pile tasks on CPU 0 with affinity, then release them: idle cores
	// must steal from the longest queue.
	k, a := newRig(t, wfqFactory)
	var tasks []*kernel.Task
	for i := 0; i < 8; i++ {
		tasks = append(tasks, k.Spawn("w", policyEnoki, spin(20*time.Millisecond, time.Millisecond),
			kernel.WithAffinity(kernel.SingleCPU(0))))
	}
	k.RunFor(time.Millisecond)
	for _, tk := range tasks {
		k.SetAffinity(tk, kernel.AllCPUs(8))
	}
	k.RunFor(60 * time.Millisecond)
	busy := 0
	for i := 0; i < 8; i++ {
		if k.CPUBusy(i) > 5*time.Millisecond {
			busy++
		}
	}
	if busy < 4 {
		t.Fatalf("work stealing spread to only %d CPUs", busy)
	}
	sched := a.Scheduler().(*wfq.Sched)
	if sched.Steals == 0 {
		t.Fatal("no steals recorded")
	}
}

func TestEnokiCoexistsWithCFS(t *testing.T) {
	// An Enoki task and a CFS task share the machine; the Enoki class
	// has priority, and when it idles CFS cycles flow (the Fig 2c
	// seamless-sharing property).
	k, _ := newRig(t, wfqFactory)
	enokiTask := k.Spawn("latency", policyEnoki, kernel.BehaviorFunc(
		func(k *kernel.Kernel, t *kernel.Task) kernel.Action {
			return kernel.Action{Run: 100 * time.Microsecond, Op: kernel.OpSleep, SleepFor: 900 * time.Microsecond}
		}), kernel.WithAffinity(kernel.SingleCPU(0)))
	batch := k.Spawn("batch", policyCFS, spin(time.Hour, time.Millisecond), kernel.WithAffinity(kernel.SingleCPU(0)))
	k.RunFor(time.Second)
	eShare := float64(enokiTask.SumExec()) / float64(time.Second)
	bShare := float64(batch.SumExec()) / float64(time.Second)
	if eShare < 0.08 || eShare > 0.13 {
		t.Fatalf("enoki share = %.3f, want ~0.10", eShare)
	}
	if bShare < 0.75 {
		t.Fatalf("batch got %.3f of the CPU; Enoki idling should cede cycles", bShare)
	}
}

// buggyScheduler returns invalid Schedulables from pick_next_task to verify
// the framework catches them (the §3.1 validation story).
type buggyScheduler struct {
	core.BaseScheduler
	policy  int
	tokens  []*core.Schedulable
	mode    string
	pntErrs []core.PickError
}

func (b *buggyScheduler) GetPolicy() int { return b.policy }
func (b *buggyScheduler) TaskNew(pid int, rt time.Duration, runnable bool, allowed []int, s *core.Schedulable) {
	b.tokens = append(b.tokens, s)
}
func (b *buggyScheduler) TaskWakeup(pid int, rt time.Duration, d bool, l, w int, s *core.Schedulable) {
	b.tokens = append(b.tokens, s)
}
func (b *buggyScheduler) TaskPreempt(pid int, rt time.Duration, cpu int, preempted bool, s *core.Schedulable) {
	b.tokens = append(b.tokens, s)
}
func (b *buggyScheduler) TaskYield(pid int, rt time.Duration, cpu int, s *core.Schedulable) {
	b.tokens = append(b.tokens, s)
}
func (b *buggyScheduler) TaskDeparted(pid, cpu int) *core.Schedulable { return nil }
func (b *buggyScheduler) SelectTaskRQ(pid, prev int, wakeup bool) int { return prev }
func (b *buggyScheduler) MigrateTaskRQ(pid, newCPU int, s *core.Schedulable) *core.Schedulable {
	return nil
}
func (b *buggyScheduler) PntErr(cpu, pid int, err core.PickError, s *core.Schedulable) {
	b.pntErrs = append(b.pntErrs, err)
}
func (b *buggyScheduler) PickNextTask(cpu int, curr *core.Schedulable, rt time.Duration) *core.Schedulable {
	if len(b.tokens) == 0 {
		return nil
	}
	tok := b.tokens[0]
	switch b.mode {
	case "wrong-cpu":
		// Return proof for a different CPU than asked.
		if tok.CPU() == cpu {
			return nil // wait until a mismatched pick comes along
		}
		b.tokens = b.tokens[1:]
		return tok
	case "forged":
		b.tokens = b.tokens[1:]
		return core.NewSchedulable(tok.PID(), cpu, tok.Gen()+100)
	default:
		b.tokens = b.tokens[1:]
		return tok
	}
}

func TestValidationCatchesWrongCPU(t *testing.T) {
	eng := sim.New()
	k := kernel.New(eng, kernel.Machine8(), kernel.DefaultCosts())
	bug := &buggyScheduler{policy: policyEnoki, mode: "wrong-cpu"}
	a := Load(k, policyEnoki, DefaultConfig(), func(core.Env) core.Scheduler { return bug })
	k.RegisterClass(policyCFS, kernel.NewCFS(k))
	k.Spawn("victim", policyEnoki, spin(10*time.Millisecond, time.Millisecond),
		kernel.WithAffinity(kernel.SingleCPU(2)))
	// Another CPU asks to pick; the module returns CPU-2 proof there.
	k.Spawn("other", policyEnoki, spin(time.Millisecond, time.Millisecond),
		kernel.WithAffinity(kernel.SingleCPU(3)))
	k.RunFor(50 * time.Millisecond)
	if a.Stats().PntErrs == 0 {
		t.Fatal("framework did not reject a wrong-CPU Schedulable")
	}
	found := false
	for _, e := range bug.pntErrs {
		if e == core.PickWrongCPU {
			found = true
		}
	}
	if !found {
		t.Fatalf("pnt_err causes = %v, want wrong-cpu", bug.pntErrs)
	}
}

func TestValidationCatchesForgedGeneration(t *testing.T) {
	eng := sim.New()
	k := kernel.New(eng, kernel.Machine8(), kernel.DefaultCosts())
	bug := &buggyScheduler{policy: policyEnoki, mode: "forged"}
	a := Load(k, policyEnoki, DefaultConfig(), func(core.Env) core.Scheduler { return bug })
	k.RegisterClass(policyCFS, kernel.NewCFS(k))
	k.Spawn("victim", policyEnoki, spin(time.Millisecond, time.Millisecond))
	k.RunFor(10 * time.Millisecond)
	if a.Stats().PntErrs == 0 {
		t.Fatal("framework accepted a forged Schedulable generation")
	}
}

func TestLiveUpgradePreservesTasks(t *testing.T) {
	k, a := newRig(t, wfqFactory)
	done := 0
	for i := 0; i < 6; i++ {
		k.Spawn("w", policyEnoki, spin(20*time.Millisecond, 500*time.Microsecond),
			kernel.WithExitObserver(func() { done++ }))
	}
	k.RunFor(5 * time.Millisecond)
	oldSched := a.Scheduler()
	var report UpgradeReport
	upgraded := false
	k.Engine().After(0, func() {
		a.Upgrade(wfqFactory, func(r UpgradeReport) { report = r; upgraded = true })
	})
	k.RunFor(100 * time.Millisecond)
	if !upgraded {
		t.Fatal("upgrade never completed")
	}
	if a.Scheduler() == oldSched {
		t.Fatal("module pointer did not swap")
	}
	if done != 6 {
		t.Fatalf("tasks lost across upgrade: %d/6 completed", done)
	}
	if report.Blackout <= 0 || report.Blackout > 50*time.Microsecond {
		t.Fatalf("blackout = %v, want ~µs scale", report.Blackout)
	}
	if a.Stats().PntErrs != 0 {
		t.Fatalf("pnt_errs after upgrade: %+v", a.Stats())
	}
}

func TestUpgradeBlackoutScalesWithCores(t *testing.T) {
	measure := func(m kernel.Machine) time.Duration {
		eng := sim.New()
		k := kernel.New(eng, m, kernel.DefaultCosts())
		a := Load(k, policyEnoki, DefaultConfig(), wfqFactory)
		k.RegisterClass(policyCFS, kernel.NewCFS(k))
		var d time.Duration
		k.Engine().After(0, func() {
			a.Upgrade(wfqFactory, func(r UpgradeReport) { d = r.Blackout })
		})
		k.RunFor(time.Millisecond)
		return d
	}
	small := measure(kernel.Machine8())
	big := measure(kernel.Machine80())
	if big <= small {
		t.Fatalf("blackout should grow with cores: %v vs %v", small, big)
	}
	// Paper: 1.5µs on 8 cores, ~10µs on 80.
	if small < 500*time.Nanosecond || small > 4*time.Microsecond {
		t.Fatalf("8-core blackout = %v, want ~1.5µs", small)
	}
	if big < 5*time.Microsecond || big > 20*time.Microsecond {
		t.Fatalf("80-core blackout = %v, want ~10µs", big)
	}
}

// hintScheduler is a minimal queue-using module for plumbing tests.
type hintScheduler struct {
	core.BaseScheduler
	fifo   *fifo.Sched
	queue  *core.HintQueue
	rev    *core.RevQueue
	hints  []core.Hint
	parsed []core.Hint
}

func (h *hintScheduler) GetPolicy() int { return h.fifo.GetPolicy() }
func (h *hintScheduler) PickNextTask(cpu int, c *core.Schedulable, rt time.Duration) *core.Schedulable {
	return h.fifo.PickNextTask(cpu, c, rt)
}
func (h *hintScheduler) TaskNew(pid int, rt time.Duration, r bool, allowed []int, s *core.Schedulable) {
	h.fifo.TaskNew(pid, rt, r, allowed, s)
}
func (h *hintScheduler) TaskWakeup(pid int, rt time.Duration, d bool, l, w int, s *core.Schedulable) {
	h.fifo.TaskWakeup(pid, rt, d, l, w, s)
}
func (h *hintScheduler) TaskPreempt(pid int, rt time.Duration, cpu int, preempted bool, s *core.Schedulable) {
	h.fifo.TaskPreempt(pid, rt, cpu, preempted, s)
}
func (h *hintScheduler) TaskYield(pid int, rt time.Duration, cpu int, s *core.Schedulable) {
	h.fifo.TaskYield(pid, rt, cpu, s)
}
func (h *hintScheduler) TaskDeparted(pid, cpu int) *core.Schedulable {
	return h.fifo.TaskDeparted(pid, cpu)
}
func (h *hintScheduler) SelectTaskRQ(pid, prev int, wakeup bool) int {
	return h.fifo.SelectTaskRQ(pid, prev, wakeup)
}
func (h *hintScheduler) MigrateTaskRQ(pid, newCPU int, s *core.Schedulable) *core.Schedulable {
	return h.fifo.MigrateTaskRQ(pid, newCPU, s)
}
func (h *hintScheduler) RegisterQueue(q *core.HintQueue) int { h.queue = q; return 1 }
func (h *hintScheduler) RegisterReverseQueue(q *core.RevQueue) int {
	h.rev = q
	return 2
}
func (h *hintScheduler) UnregisterQueue(id int) *core.HintQueue {
	q := h.queue
	h.queue = nil
	return q
}
func (h *hintScheduler) UnregisterRevQueue(id int) *core.RevQueue {
	q := h.rev
	h.rev = nil
	return q
}
func (h *hintScheduler) ReregisterPrepare() *core.TransferOut {
	// Queue ownership is module state: it must ride the upgrade capsule
	// so the next version can honour unregister calls.
	return &core.TransferOut{State: [2]any{h.queue, h.rev}}
}
func (h *hintScheduler) ReregisterInit(in *core.TransferIn) {
	if in == nil || in.State == nil {
		return
	}
	s := in.State.([2]any)
	h.queue, _ = s[0].(*core.HintQueue)
	h.rev, _ = s[1].(*core.RevQueue)
}
func (h *hintScheduler) EnterQueue(id, count int) {
	for i := 0; i < count; i++ {
		if v, ok := h.queue.Pop(); ok {
			h.hints = append(h.hints, v)
			if h.rev != nil {
				h.rev.Push("ack")
			}
		}
	}
}
func (h *hintScheduler) ParseHint(hint core.Hint) { h.parsed = append(h.parsed, hint) }

func TestHintQueuesBothDirections(t *testing.T) {
	var hs *hintScheduler
	k, a := newRig(t, func(env core.Env) core.Scheduler {
		hs = &hintScheduler{fifo: fifo.New(env, policyEnoki)}
		return hs
	})

	uq := a.CreateHintQueue(16)
	if uq == nil || uq.ID() != 1 {
		t.Fatalf("queue registration broken: %+v", uq)
	}
	rev := a.CreateRevQueue(16)
	if rev == nil {
		t.Fatal("reverse queue registration broken")
	}
	var acks []core.RevMessage
	rev.OnPush = func(m core.RevMessage) { acks = append(acks, m) }

	if !uq.Send("colocate:7") {
		t.Fatal("hint dropped")
	}
	uq.SendSync("sync-hint")
	k.RunFor(time.Millisecond) // deliver deferred reverse-queue callbacks
	if len(hs.hints) != 1 || hs.hints[0] != "colocate:7" {
		t.Fatalf("async hints = %v", hs.hints)
	}
	if len(hs.parsed) != 1 || hs.parsed[0] != "sync-hint" {
		t.Fatalf("parsed hints = %v", hs.parsed)
	}
	if len(acks) != 1 || acks[0] != "ack" {
		t.Fatalf("reverse messages = %v", acks)
	}
	uq.Close()
	if hs.queue != nil {
		t.Fatal("unregister did not detach the queue")
	}
}

func TestOverheadChargedPerCall(t *testing.T) {
	// The same pipe workload should take measurably longer under the
	// Enoki framework than under native CFS — the Table 3 overhead.
	perMsg := func(policy int, build func(*kernel.Kernel)) time.Duration {
		eng := sim.New()
		k := kernel.New(eng, kernel.Machine8(), kernel.DefaultCosts())
		build(k)
		const rounds = 2000
		var x, y *kernel.Task
		count := 0
		var finished time.Duration
		mk := func(peer **kernel.Task, starts bool) kernel.Behavior {
			started := false
			return kernel.BehaviorFunc(func(k *kernel.Kernel, t *kernel.Task) kernel.Action {
				if starts && !started {
					started = true
					return kernel.Action{Run: 300 * time.Nanosecond, Wake: []*kernel.Task{*peer}, Op: kernel.OpBlock}
				}
				count++
				if count >= 2*rounds {
					finished = time.Duration(k.Now())
					return kernel.Action{Op: kernel.OpExit}
				}
				return kernel.Action{Run: 300 * time.Nanosecond, Wake: []*kernel.Task{*peer}, Op: kernel.OpBlock}
			})
		}
		x = k.Spawn("x", policy, mk(&y, true), kernel.WithAffinity(kernel.SingleCPU(0)))
		y = k.Spawn("y", policy, mk(&x, false), kernel.WithAffinity(kernel.SingleCPU(0)))
		k.RunFor(10 * time.Second)
		if count < 2*rounds {
			t.Fatalf("pipe stalled at %d", count)
		}
		return finished / (2 * rounds)
	}
	cfsLat := perMsg(policyCFS, func(k *kernel.Kernel) {
		k.RegisterClass(policyCFS, kernel.NewCFS(k))
	})
	enokiLat := perMsg(policyEnoki, func(k *kernel.Kernel) {
		Load(k, policyEnoki, DefaultConfig(), wfqFactory)
		k.RegisterClass(policyCFS, kernel.NewCFS(k))
	})
	over := enokiLat - cfsLat
	if over < 200*time.Nanosecond || over > 1200*time.Nanosecond {
		t.Fatalf("framework overhead per message = %v (cfs %v, enoki %v), want 0.4-0.6µs band",
			over, cfsLat, enokiLat)
	}
}
