package sim

import (
	"testing"
	"time"

	"enoki/internal/ktime"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	e := New()
	var order []int
	e.After(30*time.Nanosecond, func() { order = append(order, 3) })
	e.After(10*time.Nanosecond, func() { order = append(order, 1) })
	e.After(20*time.Nanosecond, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != ktime.Time(30) {
		t.Fatalf("clock = %v", e.Now())
	}
}

func TestTiesFireInInsertionOrder(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(ktime.Time(100), func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie order broken at %d: %v", i, order)
		}
	}
}

func TestCancel(t *testing.T) {
	e := New()
	fired := false
	ev := e.After(10, func() { fired = true })
	ev.Cancel()
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Fatal("Cancelled() false after Cancel")
	}
	// Cancel after firing is a no-op.
	ev2 := e.After(10, func() {})
	e.Run()
	ev2.Cancel()
}

func TestCancelNilSafe(t *testing.T) {
	var ev *Event
	ev.Cancel() // must not panic
	if ev.Cancelled() {
		t.Fatal("nil event reports cancelled")
	}
}

func TestScheduleFromWithinEvent(t *testing.T) {
	e := New()
	count := 0
	var chain func()
	chain = func() {
		count++
		if count < 5 {
			e.After(10, chain)
		}
	}
	e.After(10, chain)
	e.Run()
	if count != 5 {
		t.Fatalf("chained events: %d", count)
	}
	if e.Now() != ktime.Time(50) {
		t.Fatalf("clock = %v", e.Now())
	}
}

func TestPastSchedulingPanics(t *testing.T) {
	e := New()
	e.After(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(ktime.Time(50), func() {})
	})
	e.Run()
}

func TestRunUntil(t *testing.T) {
	e := New()
	var fired []ktime.Time
	for _, at := range []ktime.Time{10, 20, 30, 40} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(ktime.Time(25))
	if len(fired) != 2 {
		t.Fatalf("fired %v before T+25", fired)
	}
	if e.Now() != ktime.Time(25) {
		t.Fatalf("clock should land exactly on boundary: %v", e.Now())
	}
	e.RunUntil(ktime.Time(100))
	if len(fired) != 4 {
		t.Fatalf("fired %v after full run", fired)
	}
	if e.Now() != ktime.Time(100) {
		t.Fatalf("clock = %v", e.Now())
	}
}

func TestRunUntilInclusiveBoundary(t *testing.T) {
	e := New()
	fired := false
	e.At(ktime.Time(25), func() { fired = true })
	e.RunUntil(ktime.Time(25))
	if !fired {
		t.Fatal("event exactly at boundary did not fire")
	}
}

func TestStop(t *testing.T) {
	e := New()
	count := 0
	e.After(10, func() { count++; e.Stop() })
	e.After(20, func() { count++ })
	e.Run()
	if count != 1 {
		t.Fatalf("Stop did not halt: %d", count)
	}
	e.Run() // resume
	if count != 2 {
		t.Fatalf("resume failed: %d", count)
	}
}

func TestStepAndPending(t *testing.T) {
	e := New()
	e.After(10, func() {})
	ev := e.After(20, func() {})
	ev.Cancel()
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d", e.Pending())
	}
	if !e.Step() {
		t.Fatal("Step should fire the live event")
	}
	if e.Step() {
		t.Fatal("Step should skip tombstone and report empty")
	}
	if e.Fired() != 1 {
		t.Fatalf("Fired = %d", e.Fired())
	}
}

func TestManyEventsDeterministic(t *testing.T) {
	run := func() []ktime.Time {
		e := New()
		r := ktime.NewRand(99)
		var log []ktime.Time
		for i := 0; i < 5000; i++ {
			at := ktime.Time(r.Intn(100000))
			e.At(at, func() { log = append(log, e.Now()) })
		}
		e.Run()
		return log
	}
	a, b := run(), run()
	if len(a) != 5000 || len(b) != 5000 {
		t.Fatalf("lengths: %d %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at %d", i)
		}
		if i > 0 && a[i] < a[i-1] {
			t.Fatalf("time went backwards at %d", i)
		}
	}
}
