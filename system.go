package enoki

import (
	"errors"
	"fmt"
	"io"
	"time"

	"enoki/internal/enokic"
	"enoki/internal/kernel"
	"enoki/internal/overload"
	"enoki/internal/record"
	"enoki/internal/sim"
	"enoki/internal/trace"
	"enoki/internal/vpol"
)

// System is the assembled simulation: one event engine, one simulated
// kernel, and the scheduler classes loaded into it. It is the front door of
// the public API — construct one with NewSystem, attach policies, spawn
// work, run:
//
//	sys := enoki.NewSystem(enoki.WithMachine(enoki.Machine80()))
//	ad, err := sys.Attach(policyMine, enoki.GoModule(func(env enoki.Env) enoki.Scheduler {
//	        return mysched.New(env, policyMine)
//	}))
//	sys.RegisterCFS(policyCFS) // CFS below the module, as in the paper
//	sys.Kernel().Spawn(...)
//	sys.Run(20 * time.Millisecond)
//
// Attachment order is priority order: policies attached earlier preempt
// later ones, which is why Enoki policies attach before CFS. Attach accepts
// all three tiers of the policy spectrum — GoModule, VerifiedProgram,
// BuiltinClass (see PolicySource).
type System struct {
	eng *sim.Engine
	k   *kernel.Kernel

	// sk is non-nil in sharded mode (WithShards): one sub-kernel per NUMA
	// node under the epoch-merge executor, and eng/k are nil — per-shard
	// access goes through ShardKernel.
	sk *kernel.ShardedKernel

	cfg      Config
	adapters []*enokic.Adapter

	// verified indexes the verified-tier classes attached through
	// Attach(VerifiedProgram(...)), by policy id (shard 0's instance in
	// sharded mode).
	verified map[int]*vpol.Class

	tracer *trace.Tracer

	// adm holds the admission/brownout controllers installed by
	// WithAdmission, one per shard (index 0 on an unsharded System).
	adm []*overload.Controller

	// Recorder plumbing: WithRecorder defers creation until the drain
	// class exists (the recorder spawns its userspace drain task into it).
	recW      io.Writer
	recPolicy int
	recCosts  RecordCosts
	recWanted bool
	recorder  *record.Recorder

	// closed latches after Close: a closed System cannot load modules or
	// run, and closing again reports ErrSystemClosed.
	closed bool
}

// ErrSystemClosed is the sentinel wrapped by operations on a closed System:
// a second Close, or Load after Close.
var ErrSystemClosed = errors.New("system closed")

// options collects the functional-option state for NewSystem.
type options struct {
	machine  Machine
	costs    Costs
	hasCosts bool
	cfg      Config

	recW      io.Writer
	recPolicy int
	recCosts  RecordCosts
	recWanted bool

	tracer *trace.Tracer

	admission []overload.ClassConfig
	brownouts []brownoutOpt

	sharded  bool
	shards   int
	parallel bool
}

// Option configures NewSystem.
type Option func(*options)

// WithMachine selects the simulated host topology (default Machine8). Costs
// are calibrated for the machine via CostsFor unless WithCosts overrides
// them.
func WithMachine(m Machine) Option {
	return func(o *options) { o.machine = m }
}

// WithCosts overrides the kernel cost table (default CostsFor(machine)).
func WithCosts(c Costs) Option {
	return func(o *options) { o.costs, o.hasCosts = c, true }
}

// WithConfig sets the framework Config handed to every Load (default
// DefaultConfig).
func WithConfig(cfg Config) Option {
	return func(o *options) { o.cfg = cfg }
}

// WithRecorder arranges record mode: a Recorder writing the message/lock
// log to w, its userspace drain task spawned into drainPolicy (normally the
// CFS policy id), installed on every module the System loads. The recorder
// is created as soon as drainPolicy's class is registered — register it
// before spawning tasks or the earliest task_new messages are lost.
func WithRecorder(w io.Writer, drainPolicy int) Option {
	return func(o *options) {
		o.recW, o.recPolicy, o.recWanted = w, drainPolicy, true
		o.recCosts = record.DefaultCosts()
	}
}

// WithTraceSink installs t as the event tracer on the kernel and on every
// module the System loads, producing one interleaved timeline of scheduling
// decisions and framework crossings.
func WithTraceSink(t *Tracer) Option {
	return func(o *options) { o.tracer = t }
}

// WithShards partitions the machine into one sub-kernel per NUMA node, all
// driven by the deterministic epoch-merge executor: shard i owns node i's
// CPUs, run queues, and timers, and the only cross-shard interaction is the
// remote wake (see ShardedKernel.RemoteWake). n must equal the machine's
// node count, or be 0 to accept whatever the machine has. Sharding changes
// the execution strategy, not the model: Load and RegisterCFS apply per
// shard, and the simulation stays deterministic in both drive modes.
//
// In sharded mode Kernel and Engine return nil — use NumShards and
// ShardKernel — and WithRecorder/WithTraceSink are rejected: recorders and
// tracers are single-kernel taps, so attach one per shard by hand instead.
func WithShards(n int) Option {
	return func(o *options) { o.sharded, o.shards = true, n }
}

// WithParallelSim selects the sharded executor's drive mode: worker
// goroutines (true) or serial shard order (false, the default). Both
// produce bit-identical simulations; parallel only changes wall-clock
// speed. Requires WithShards.
func WithParallelSim(on bool) Option {
	return func(o *options) { o.parallel = on }
}

// NewSystem builds an engine and a kernel behind one handle. With no
// options it models the paper's 8-core machine with calibrated costs and no
// observability taps.
func NewSystem(opts ...Option) *System {
	o := options{machine: kernel.Machine8(), cfg: enokic.DefaultConfig()}
	for _, opt := range opts {
		opt(&o)
	}
	if !o.hasCosts {
		o.costs = kernel.CostsFor(o.machine)
	}
	if o.sharded {
		if o.shards != 0 && o.shards != o.machine.NumNodes {
			panic(fmt.Sprintf("enoki: WithShards(%d) on a %d-node machine (shards are NUMA nodes)",
				o.shards, o.machine.NumNodes))
		}
		if o.recWanted {
			panic("enoki: WithRecorder is a single-kernel tap; in sharded mode attach one recorder per ShardKernel")
		}
		if o.tracer != nil {
			panic("enoki: WithTraceSink is a single-kernel tap; in sharded mode attach one tracer per ShardKernel")
		}
		sk := kernel.NewShardedKernel(o.machine, o.costs, 0)
		sk.SetParallel(o.parallel)
		return &System{sk: sk, cfg: o.cfg, adm: buildAdmission(&o, sk.NumShards())}
	}
	if o.parallel {
		panic("enoki: WithParallelSim requires WithShards")
	}
	eng := sim.New()
	k := kernel.New(eng, o.machine, o.costs)
	s := &System{
		eng: eng, k: k, cfg: o.cfg,
		adm:  buildAdmission(&o, 1),
		recW: o.recW, recPolicy: o.recPolicy,
		recCosts: o.recCosts, recWanted: o.recWanted,
		tracer: o.tracer,
	}
	if o.tracer != nil {
		k.SetTracer(o.tracer)
	}
	return s
}

// Kernel returns the simulated kernel (spawning tasks, querying state). In
// sharded mode there is no single kernel and Kernel returns nil — use
// ShardKernel.
func (s *System) Kernel() *Kernel { return s.k }

// Engine returns the discrete-event engine driving the simulation, or nil
// in sharded mode (each shard has its own; ShardKernel(i).Engine()).
func (s *System) Engine() *Engine { return s.eng }

// NumShards returns the shard count: 1 for a single-kernel System, the
// machine's NUMA node count under WithShards.
func (s *System) NumShards() int {
	if s.sk != nil {
		return s.sk.NumShards()
	}
	return 1
}

// ShardKernel returns shard i's sub-kernel. On a single-kernel System only
// shard 0 exists and it is the kernel itself.
func (s *System) ShardKernel(i int) *Kernel {
	if s.sk != nil {
		return s.sk.ShardKernel(i)
	}
	if i != 0 {
		panic(fmt.Sprintf("enoki: ShardKernel(%d) on an unsharded System", i))
	}
	return s.k
}

// Sharded returns the sharded executor wrapper, or nil when the System was
// built without WithShards.
func (s *System) Sharded() *ShardedKernel { return s.sk }

// SetParallel flips the sharded executor's drive mode at a run boundary.
// No-op on an unsharded System.
func (s *System) SetParallel(on bool) {
	if s.sk != nil {
		s.sk.SetParallel(on)
	}
}

// Close retires the System: on a sharded System it stops the executor's
// worker goroutines; on an unsharded one it only latches the closed state.
// The first Close returns nil; closing again returns an error wrapping
// ErrSystemClosed, and a closed System rejects Load (error) and panics on
// RegisterClass/RegisterCFS/Run — mirroring the UserQueue double-Close
// hardening, so lifecycle bugs surface as clean failures instead of
// use-after-close corruption.
func (s *System) Close() error {
	if s.closed {
		return fmt.Errorf("enoki: double Close: %w", ErrSystemClosed)
	}
	s.closed = true
	if s.sk != nil {
		s.sk.Close()
	}
	return nil
}

// Config returns the framework Config used for Load.
func (s *System) Config() Config { return s.cfg }

// Load constructs a scheduler module via factory and registers it under
// policy.
//
// Deprecated: use Attach with a GoModule source — Load is a thin shim over
// it and keeps its exact error semantics (ErrDuplicatePolicy,
// ErrPolicyMismatch, ErrSystemClosed; per-shard loads in sharded mode).
func (s *System) Load(policy int, factory func(Env) Scheduler) (*Adapter, error) {
	return s.Attach(policy, GoModule(factory))
}

// MustLoad is Load panicking on error.
//
// Deprecated: use MustAttach with a GoModule source.
func (s *System) MustLoad(policy int, factory func(Env) Scheduler) *Adapter {
	return s.MustAttach(policy, GoModule(factory))
}

// RegisterClass registers a native (non-module) scheduler class under
// policy, panicking on misuse (closed System, sharded mode, duplicate id).
//
// Deprecated: use Attach with a BuiltinClass source, which reports the same
// conditions as typed errors instead of panics.
func (s *System) RegisterClass(policy int, c Class) {
	if s.closed {
		panic("enoki: RegisterClass on a closed System")
	}
	if s.sk != nil {
		panic("enoki: RegisterClass binds one Class to one kernel; in sharded mode register per ShardKernel (or use RegisterCFS)")
	}
	if _, err := s.Attach(policy, BuiltinClass(c)); err != nil {
		panic(fmt.Sprintf("enoki: %v", err))
	}
}

// RegisterCFS builds the native CFS baseline, registers it under policy,
// and returns it. Register it after every Enoki module so the modules sit
// above it in the pick order, mirroring the paper's setups. In sharded mode
// one CFS is built per shard and shard 0's is returned.
func (s *System) RegisterCFS(policy int) *kernel.CFS {
	if s.closed {
		panic("enoki: RegisterCFS on a closed System")
	}
	if s.sk != nil {
		var first *kernel.CFS
		for i := 0; i < s.sk.NumShards(); i++ {
			k := s.sk.ShardKernel(i)
			c := kernel.NewCFS(k)
			k.RegisterClass(policy, c)
			if first == nil {
				first = c
			}
		}
		return first
	}
	c := kernel.NewCFS(s.k)
	s.RegisterClass(policy, c)
	return c
}

// afterRegister creates the deferred recorder once its drain class exists
// and installs it on every adapter loaded so far.
func (s *System) afterRegister() {
	if !s.recWanted || s.recorder != nil || s.k.ClassByID(s.recPolicy) == nil {
		return
	}
	s.recorder = record.New(s.k, s.recW, s.recPolicy, s.recCosts)
	for _, ad := range s.adapters {
		ad.SetRecorder(s.recorder)
	}
}

// Recorder returns the live recorder, or nil when WithRecorder was not used
// or its drain class is not registered yet.
func (s *System) Recorder() *Recorder { return s.recorder }

// Adapters returns the modules loaded through this System, in load order.
func (s *System) Adapters() []*Adapter { return s.adapters }

// Run advances the simulation by d of virtual time.
func (s *System) Run(d time.Duration) {
	if s.closed {
		panic("enoki: Run on a closed System")
	}
	if s.sk != nil {
		s.sk.RunFor(d)
		return
	}
	s.k.RunFor(d)
}

// RunUntilIdle runs until the event queue drains (all tasks exited or
// blocked with no timers pending; in sharded mode, every shard drained and
// no cross-shard message in flight).
func (s *System) RunUntilIdle() {
	if s.sk != nil {
		s.sk.RunUntilIdle()
		return
	}
	s.k.RunUntilIdle()
}

// Now returns the current virtual time.
func (s *System) Now() Time {
	if s.sk != nil {
		return s.sk.Now()
	}
	return s.k.Now()
}
