package enoki_test

import (
	"errors"
	"testing"
	"time"

	"enoki"
)

// TestAttachQuickstart runs the README three-tier setup: the same machine
// carries a module-tier WFQ (policy 2), a verified-tier dual-queue (policy
// 1), and builtin CFS (policy 0), all attached through System.Attach.
func TestAttachQuickstart(t *testing.T) {
	sys := enoki.NewSystem(enoki.WithMachine(enoki.Machine8()))
	k := sys.Kernel()

	ad, err := sys.Attach(2, enoki.GoModule(
		func(env enoki.Env) enoki.Scheduler { return enoki.NewWFQScheduler(env, 2) }))
	if err != nil {
		t.Fatalf("Attach(GoModule): %v", err)
	}
	if ad == nil {
		t.Fatal("GoModule attach returned a nil Adapter")
	}
	if _, err := sys.Attach(1, enoki.VerifiedProgram(enoki.VDualQueueProgram())); err != nil {
		t.Fatalf("Attach(VerifiedProgram): %v", err)
	}
	if _, err := sys.Attach(0, enoki.BuiltinClass(enoki.NewCFS(k))); err != nil {
		t.Fatalf("Attach(BuiltinClass): %v", err)
	}

	vc := sys.VerifiedClass(1)
	if vc == nil {
		t.Fatal("VerifiedClass(1) = nil after a verified attach")
	}
	if sys.VerifiedClass(2) != nil {
		t.Fatal("VerifiedClass(2) non-nil for a module policy")
	}

	done := 0
	for policy := 0; policy <= 2; policy++ {
		for i := 0; i < 3; i++ {
			remaining := 2 * time.Millisecond
			k.Spawn("t", policy, enoki.BehaviorFunc(func(*enoki.Kernel, *enoki.Task) enoki.Action {
				if remaining <= 0 {
					done++
					return enoki.Action{Op: enoki.OpExit}
				}
				run := 200 * time.Microsecond
				remaining -= run
				return enoki.Action{Run: run, Op: enoki.OpContinue}
			}))
		}
	}
	sys.RunUntilIdle()
	if done != 9 {
		t.Fatalf("done = %d, want 9 (3 tasks per tier)", done)
	}
	if vc.Stats().Picks == 0 {
		t.Fatal("verified class never picked a task")
	}
	if got := ad.Stats().Messages; got == 0 {
		t.Fatal("module adapter never crossed")
	}
}

// TestAttachTierTags pins the PolicySource tier names the metrics layer
// keys on.
func TestAttachTierTags(t *testing.T) {
	if g := enoki.GoModule(nil).Tier(); g != "module" {
		t.Fatalf("GoModule tier = %q", g)
	}
	if g := enoki.VerifiedProgram(nil).Tier(); g != "verified" {
		t.Fatalf("VerifiedProgram tier = %q", g)
	}
	if g := enoki.BuiltinClass(nil).Tier(); g != "builtin" {
		t.Fatalf("BuiltinClass tier = %q", g)
	}
}

// TestAttachErrors pins the typed failures: duplicate policy ids across
// tiers, nil sources and payloads, attach after Close, builtin in sharded
// mode.
func TestAttachErrors(t *testing.T) {
	sys := enoki.NewSystem()
	k := sys.Kernel()
	if _, err := sys.Attach(1, enoki.VerifiedProgram(enoki.VFIFOProgram())); err != nil {
		t.Fatalf("first verified attach: %v", err)
	}
	if _, err := sys.Attach(1, enoki.GoModule(
		func(env enoki.Env) enoki.Scheduler { return enoki.NewWFQScheduler(env, 1) })); !errors.Is(err, enoki.ErrDuplicatePolicy) {
		t.Fatalf("module over verified id = %v, want ErrDuplicatePolicy", err)
	}
	if _, err := sys.Attach(1, enoki.VerifiedProgram(enoki.VFIFOProgram())); !errors.Is(err, enoki.ErrDuplicatePolicy) {
		t.Fatalf("verified over verified id = %v, want ErrDuplicatePolicy", err)
	}
	if _, err := sys.Attach(1, enoki.BuiltinClass(enoki.NewCFS(k))); !errors.Is(err, enoki.ErrDuplicatePolicy) {
		t.Fatalf("builtin over verified id = %v, want ErrDuplicatePolicy", err)
	}

	if _, err := sys.Attach(3, nil); err == nil {
		t.Fatal("Attach(nil source) succeeded")
	}
	if _, err := sys.Attach(3, enoki.VerifiedProgram(nil)); err == nil {
		t.Fatal("Attach(VerifiedProgram(nil)) succeeded")
	}
	if _, err := sys.Attach(3, enoki.GoModule(nil)); err == nil {
		t.Fatal("Attach(GoModule(nil)) succeeded")
	}
	if _, err := sys.Attach(3, enoki.BuiltinClass(nil)); err == nil {
		t.Fatal("Attach(BuiltinClass(nil)) succeeded")
	}

	// Unverifiable programs are rejected at attach time.
	bad := &enoki.VProgram{} // no queues, no code
	if _, err := sys.Attach(3, enoki.VerifiedProgram(bad)); err == nil {
		t.Fatal("Attach of an unverifiable program succeeded")
	}

	if err := sys.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := sys.Attach(4, enoki.VerifiedProgram(enoki.VFIFOProgram())); !errors.Is(err, enoki.ErrSystemClosed) {
		t.Fatalf("Attach after Close = %v, want ErrSystemClosed", err)
	}
}

// TestAttachSharded covers the sharded rules: module and verified sources
// attach once per shard; builtin sources are rejected.
func TestAttachSharded(t *testing.T) {
	sys := enoki.NewSystem(enoki.WithMachine(enoki.Machine80()), enoki.WithShards(0))
	defer sys.Close()

	if _, err := sys.Attach(1, enoki.VerifiedProgram(enoki.VFIFOProgram())); err != nil {
		t.Fatalf("sharded verified attach: %v", err)
	}
	if sys.VerifiedClass(1) == nil {
		t.Fatal("VerifiedClass(1) nil after sharded attach")
	}
	for i := 0; i < sys.NumShards(); i++ {
		if sys.ShardKernel(i).ClassByID(1) == nil {
			t.Fatalf("shard %d missing verified class", i)
		}
	}

	ad, err := sys.Attach(2, enoki.GoModule(
		func(env enoki.Env) enoki.Scheduler { return enoki.NewWFQScheduler(env, 2) }))
	if err != nil {
		t.Fatalf("sharded module attach: %v", err)
	}
	if ad == nil || len(sys.Adapters()) != sys.NumShards() {
		t.Fatalf("sharded module attach: %d adapters, want %d", len(sys.Adapters()), sys.NumShards())
	}

	if _, err := sys.Attach(0, enoki.BuiltinClass(enoki.NewCFS(sys.ShardKernel(0)))); err == nil {
		t.Fatal("sharded BuiltinClass attach succeeded; a Class binds to one kernel")
	}
}

// TestAttachShimEquivalence keeps the deprecated Load/RegisterClass shims
// behaving exactly like their Attach equivalents.
func TestAttachShimEquivalence(t *testing.T) {
	sys := enoki.NewSystem()
	if _, err := sys.Load(1, func(env enoki.Env) enoki.Scheduler {
		return enoki.NewWFQScheduler(env, 1)
	}); err != nil {
		t.Fatalf("Load shim: %v", err)
	}
	sys.RegisterClass(0, enoki.NewCFS(sys.Kernel()))
	if _, err := sys.Load(1, func(env enoki.Env) enoki.Scheduler {
		return enoki.NewWFQScheduler(env, 1)
	}); !errors.Is(err, enoki.ErrDuplicatePolicy) {
		t.Fatalf("duplicate Load = %v, want ErrDuplicatePolicy", err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("duplicate RegisterClass did not panic")
			}
		}()
		sys.RegisterClass(0, enoki.NewCFS(sys.Kernel()))
	}()
}

// TestAttachVerifiedFault exercises the verified tier's fault road through
// the public API: a program dividing by the task's nice value traps on the
// first nice-0 enqueue, the class is killed, its tasks finish under the
// fallback CFS, and the failure is reported with the right trap.
func TestAttachVerifiedFault(t *testing.T) {
	src := `
queues shared=1 local=0
enqueue:
    ldf r2, nice
    ldi r3, 100
    div r3, r2      ; traps when nice == 0
    enq shared, 0
    ret
pick:
    trypop shared, 0
    ret
`
	prog, err := enoki.Assemble(src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	if err := enoki.VerifyProgram(prog); err != nil {
		t.Fatalf("Verify: %v", err)
	}

	sys := enoki.NewSystem()
	k := sys.Kernel()
	if _, err := sys.Attach(1, enoki.VerifiedProgram(prog)); err != nil {
		t.Fatalf("Attach: %v", err)
	}
	sys.RegisterCFS(0)

	done := 0
	for i := 0; i < 4; i++ {
		remaining := time.Millisecond
		k.Spawn("w", 1, enoki.BehaviorFunc(func(*enoki.Kernel, *enoki.Task) enoki.Action {
			if remaining <= 0 {
				done++
				return enoki.Action{Op: enoki.OpExit}
			}
			remaining -= 100 * time.Microsecond
			return enoki.Action{Run: 100 * time.Microsecond, Op: enoki.OpContinue}
		}), enoki.WithNice(0))
	}
	sys.RunUntilIdle()

	vc := sys.VerifiedClass(1)
	if !vc.Killed() {
		t.Fatal("verified class survived a guaranteed div-zero")
	}
	if f := vc.Failure(); f == nil || f.Trap != enoki.TrapDivZero {
		t.Fatalf("failure = %+v, want TrapDivZero", vc.Failure())
	}
	if done != 4 {
		t.Fatalf("done = %d, want 4 (tasks rehomed to CFS finish)", done)
	}
}
