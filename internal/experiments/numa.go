package experiments

import (
	"fmt"
	"time"

	"enoki"
	"enoki/internal/kernel"
	"enoki/internal/stats"
	"enoki/internal/workload"
)

// NUMACell is one balancing configuration's schbench + crossing counters on
// the two-socket machine.
type NUMACell struct {
	Name          string
	P50, P99      time.Duration
	XLLCMoves     uint64
	XNodeMoves    uint64
	IPIsSent      uint64
	IPIsCoalesced uint64
}

// NUMAResult compares flat load balancing against the NUMA-sharded domains
// (tentpole experiment): same schbench workload, same machine, the only
// difference is whether CFS sees the real topology. A third row turns off
// IPI batching on the NUMA-aware kernel to isolate the message-path win.
type NUMAResult struct {
	Cells    []NUMACell
	Duration time.Duration
}

// Name implements the experiment naming convention.
func (r *NUMAResult) Name() string { return "numa" }

func (r *NUMAResult) String() string {
	t := stats.NewTable("Balancing", "p50 (µs)", "p99 (µs)", "xLLC moves", "xSocket moves", "IPIs sent", "IPIs coalesced")
	for _, c := range r.Cells {
		t.Row(c.Name,
			fmt.Sprintf("%d", c.P50/time.Microsecond),
			fmt.Sprintf("%d", c.P99/time.Microsecond),
			fmt.Sprintf("%d", c.XLLCMoves),
			fmt.Sprintf("%d", c.XNodeMoves),
			fmt.Sprintf("%d", c.IPIsSent),
			fmt.Sprintf("%d", c.IPIsCoalesced))
	}
	return "NUMA-sharded scheduling domains: schbench + batch load, 80-core two-socket machine\n" +
		fmt.Sprintf("measurement window: %v\n", r.Duration) + t.String()
}

// numaVariant names one kernel configuration of the comparison.
type numaVariant struct {
	name    string
	flat    bool
	batched bool
}

// NUMA runs the domain-sharding comparison: flat CFS treats all 80 CPUs as
// one pool and migrates freely across sockets; NUMA-aware CFS steals inside
// an LLC domain first and crosses the socket boundary only past the
// imbalance threshold. Both kernels charge the same topology-dependent
// migration costs, so the flat balancer's cross-socket moves cost it real
// latency.
func NUMA(o Options) *NUMAResult {
	warmup := scaleDur(o, 2*time.Second, 50*time.Millisecond)
	duration := scaleDur(o, 5*time.Second, 300*time.Millisecond)
	res := &NUMAResult{Duration: duration}

	variants := []numaVariant{
		{name: "Flat (one pool)", flat: true, batched: true},
		{name: "NUMA-sharded", flat: false, batched: true},
		{name: "NUMA-sharded, per-wake IPIs", flat: false, batched: false},
	}
	cells := make([]NUMACell, len(variants))
	parDo(o, len(cells), func(ci int) {
		v := variants[ci]
		m := kernel.Machine80()
		sys := enoki.NewSystem(enoki.WithMachine(m))
		k := sys.Kernel()
		k.SetIPIBatching(v.batched)
		if v.flat {
			sys.MustAttach(PolicyCFS, enoki.BuiltinClass(kernel.NewCFSFlat(k)))
		} else {
			sys.RegisterCFS(PolicyCFS)
		}

		// Background batch load piled onto socket 0's first LLC domain:
		// 60 spinners stacked six-deep on ten cores, then released. The
		// standing queue depth is what the balancers resolve — the flat
		// kernel drags tasks straight across the socket; the sharded one
		// spreads within socket 0's LLC domains first and crosses only
		// past the NUMA threshold.
		const nbatch = 60
		for i := 0; i < nbatch; i++ {
			cpu := i % 10 // socket 0, LLC domain 0
			k.Spawn("batch", PolicyCFS, kernel.BehaviorFunc(
				func(*kernel.Kernel, *kernel.Task) kernel.Action {
					return kernel.Action{Run: 3 * time.Millisecond, Op: kernel.OpContinue}
				}), kernel.WithAffinity(kernel.SingleCPU(cpu)), kernel.WithNice(5))
		}
		for pid := 1; pid <= nbatch; pid++ {
			// Released after spawn placement: the pile is now migratable
			// load the balancers see from every domain.
			k.SetAffinity(k.TaskByPID(pid), kernel.AllCPUs(80))
		}

		// Slightly oversubscribed (90 workers + 60 batch on 80 CPUs):
		// wake bursts hit busy CPUs often enough for the batched path's
		// per-target IPI coalescing to show, while the latency-sensitive
		// workers still win from staying cache- and socket-local.
		sr := workload.RunSchbench(k, workload.SchbenchConfig{
			Policy:         PolicyCFS,
			MessageThreads: 6,
			WorkersPerMsg:  15,
			Warmup:         warmup,
			Duration:       duration,
		})
		cells[ci] = NUMACell{
			Name: v.name, P50: sr.P50, P99: sr.P99,
			XLLCMoves: k.XLLCMoves, XNodeMoves: k.XNodeMoves,
			IPIsSent: k.IPIsSent, IPIsCoalesced: k.IPIsCoalesced,
		}
	})
	res.Cells = cells
	return res
}
