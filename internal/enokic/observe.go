package enokic

import (
	"enoki/internal/core"
	"enoki/internal/metrics"
	"enoki/internal/trace"
)

// Observability taps for the framework crossing itself: where the kernel's
// tracer sees scheduling decisions (switch/idle/wake), the adapter's taps see
// every message that crosses into the module, plus the fault machinery
// (watchdog arms, trips, kills) and the hint-queue plumbing. Both taps are
// optional, preallocated, and guarded by one branch, preserving the
// zero-allocation dispatch path.

// SetTracer installs (or removes, with nil) the adapter's event tracer.
// Point it at the same tracer as Kernel.SetTracer to get one interleaved
// timeline.
func (a *Adapter) SetTracer(t *trace.Tracer) {
	a.tracer = t
	a.refreshSink()
}

// SetMetrics registers this adapter's class in s and routes the adapter's
// crossing metrics there (nil removes the tap).
func (a *Adapter) SetMetrics(s *metrics.Set) {
	if s == nil {
		a.met = nil
	} else {
		a.met = s.Register(a.policy, a.Name())
	}
	a.refreshSink()
}

// refreshSink caches the TraceSink handed to SafeDispatchTraced: the adapter
// itself when any tap is live, nil otherwise so the dispatch fast path keeps
// a single pointer test.
func (a *Adapter) refreshSink() {
	if a.tracer != nil || a.met != nil {
		a.sink = a
	} else {
		a.sink = nil
	}
}

// TraceCrossing implements core.TraceSink: called once per dispatched
// message, including ones that panicked. The modeled crossing cost
// (OverheadPerCall) is the dispatch latency — virtual, so serial and
// parallel runs aggregate identically.
func (a *Adapter) TraceCrossing(m *core.Message, faulted bool) {
	if a.tracer != nil {
		ev := trace.Event{
			Ts:     m.Now,
			Dur:    int64(a.OverheadPerCall()),
			Kind:   trace.KindDispatch,
			CPU:    int32(m.Thread),
			PID:    int32(m.PID),
			Policy: int32(a.policy),
			Arg:    int64(m.Kind),
		}
		if faulted {
			a.tracer.EmitAlways(ev)
		} else {
			a.tracer.Emit(ev)
		}
	}
	if a.met != nil {
		cm := a.met.CPU(m.Thread)
		cm.Crossings++
		cm.DispatchLat.Record(a.OverheadPerCall())
		if faulted {
			cm.Faults++
		}
	}
}

var _ core.TraceSink = (*Adapter)(nil)

// traceFaultEvent emits a fault-machinery event when a tracer is installed.
func (a *Adapter) traceFaultEvent(kind trace.Kind, cpu int, arg int64) {
	if a.tracer == nil {
		return
	}
	a.tracer.Emit(trace.Event{
		Ts:     int64(a.k.Now()),
		Kind:   kind,
		CPU:    int32(cpu),
		Policy: int32(a.policy),
		Arg:    arg,
	})
}
