// Package ghost models the ghOSt framework (Humphries et al., SOSP '21),
// the baseline Enoki is evaluated against. GhOSt delegates scheduling
// policy to userspace agents: the kernel component only forwards state
// changes as asynchronous messages and applies previously committed
// transactions; every actual decision requires an agent to be scheduled and
// run.
//
// Two agent arrangements from the paper are provided:
//
//   - per-CPU FIFO: one agent per CPU that shares the CPU with the workload
//     it schedules — the source of the one-core pipe penalty in Table 3;
//   - SOL ("speed-of-light"): one global agent on a dedicated core,
//     latency-optimized at the price of burning that core (Fig 2c).
//
// Policies are pluggable (FIFO and a Shinjuku-style FCFS with µs preemption
// are provided) and run entirely in the agent, mirroring ghOSt's split of
// mechanism (kernel) and policy (userspace). Decisions are applied
// asynchronously and may be stale; the kernel side re-validates a committed
// transaction before running it.
package ghost

import (
	"fmt"
	"time"

	"enoki/internal/kernel"
	"enoki/internal/ktime"
)

// Mode selects the agent arrangement.
type Mode int

// Agent arrangements.
const (
	// ModePerCPU runs one agent per CPU, sharing that CPU.
	ModePerCPU Mode = iota
	// ModeSOL runs one global agent on a dedicated core.
	ModeSOL
)

// Costs calibrates the ghOSt message path.
type Costs struct {
	// MsgPost is the kernel-side cost of posting one message to an agent
	// queue, charged per scheduler-class crossing.
	MsgPost time.Duration
	// AgentBase is the fixed agent cost per activation.
	AgentBase time.Duration
	// AgentPerMsg is the agent cost to consume one message.
	AgentPerMsg time.Duration
	// TxnCommit is the agent cost to commit one scheduling transaction.
	TxnCommit time.Duration
	// CommitApply is the kernel cost to validate and apply a committed
	// transaction at pick time.
	CommitApply time.Duration
	// SpinPoll is the SOL agent's idle poll granularity; messages wait
	// on average half of it.
	SpinPoll time.Duration
}

// DefaultCosts returns the calibrated ghOSt cost table.
func DefaultCosts() Costs {
	return Costs{
		MsgPost:     260 * time.Nanosecond,
		AgentBase:   600 * time.Nanosecond,
		AgentPerMsg: 800 * time.Nanosecond,
		TxnCommit:   900 * time.Nanosecond,
		CommitApply: 300 * time.Nanosecond,
		SpinPoll:    4000 * time.Nanosecond,
	}
}

// MsgKind identifies an agent message.
type MsgKind int

// Agent message kinds.
const (
	MNew MsgKind = iota + 1
	MWakeup
	MBlocked
	MDead
	MPreempt
	MYield
)

// AgentMsg is one asynchronous state-change notification.
type AgentMsg struct {
	Kind    MsgKind
	PID     int
	CPU     int
	Runtime time.Duration
	Allowed []int
}

// AgentPolicy is the userspace scheduling policy an agent runs.
type AgentPolicy interface {
	// Name labels the policy in experiment tables.
	Name() string
	// OnMessage consumes one notification.
	OnMessage(m AgentMsg)
	// NextFor returns the pid the policy wants on cpu, consuming the
	// decision; ok=false means nothing for that CPU.
	NextFor(cpu int) (pid int, ok bool)
	// Slice returns the preemption quantum, or 0 to run tasks until they
	// block.
	Slice() time.Duration
	// Pending returns how many tasks are waiting for CPUs (slicing a
	// running task is only useful when someone waits).
	Pending() int
}

// Ghost is the kernel component: a scheduler class whose policy lives in
// agents.
type Ghost struct {
	k      *kernel.Kernel
	mode   Mode
	policy AgentPolicy
	costs  Costs

	agentCPU int // SOL: the dedicated core
	agents   []*kernel.Task
	woken    []bool // agent runnable flags, indexed by agent slot

	pending   [][]AgentMsg // per agent slot
	committed []int        // per cpu, 0 = none
	currPID   []int        // per cpu, running ghost task
	pickedAt  []ktime.Time

	tasks   map[int]*kernel.Task // runnable (queued) ghost tasks
	nqueued []int

	// AgentActivations counts agent scheduling rounds.
	AgentActivations uint64
	// StaleCommits counts committed transactions that failed validation.
	StaleCommits uint64
}

var _ kernel.Class = (*Ghost)(nil)

// New builds the ghOSt class. For ModeSOL, agentCPU is the dedicated core.
func New(k *kernel.Kernel, mode Mode, policy AgentPolicy, agentCPU int, costs Costs) *Ghost {
	n := k.NumCPUs()
	slots := n
	if mode == ModeSOL {
		slots = 1
	}
	return &Ghost{
		k: k, mode: mode, policy: policy, costs: costs, agentCPU: agentCPU,
		agents:    make([]*kernel.Task, slots),
		woken:     make([]bool, slots),
		pending:   make([][]AgentMsg, slots),
		committed: make([]int, n),
		currPID:   make([]int, n),
		pickedAt:  make([]ktime.Time, n),
		tasks:     make(map[int]*kernel.Task),
		nqueued:   make([]int, n),
	}
}

// agentMarker tags agent tasks so class hooks can recognise them even while
// Spawn is still executing (before the agents slice is filled in).
type agentMarker struct{ slot int }

// Start spawns the agent tasks into this class under policyID. Call after
// registering the class.
func (g *Ghost) Start(policyID int) {
	if g.mode == ModeSOL {
		g.agents[0] = g.k.Spawn("ghost-agent", policyID, g.agentBehavior(0),
			kernel.WithAffinity(kernel.SingleCPU(g.agentCPU)),
			kernel.WithUserData(agentMarker{slot: 0}))
		return
	}
	for cpu := 0; cpu < g.k.NumCPUs(); cpu++ {
		g.agents[cpu] = g.k.Spawn(fmt.Sprintf("ghost-agent-%d", cpu), policyID,
			g.agentBehavior(cpu),
			kernel.WithAffinity(kernel.SingleCPU(cpu)),
			kernel.WithUserData(agentMarker{slot: cpu}))
	}
}

func (g *Ghost) slotFor(cpu int) int {
	if g.mode == ModeSOL {
		return 0
	}
	return cpu
}

func (g *Ghost) isAgent(t *kernel.Task) bool {
	_, ok := t.UserData.(agentMarker)
	return ok
}

// agentSlot returns the agent slot of an agent task.
func agentSlot(t *kernel.Task) int { return t.UserData.(agentMarker).slot }

// post enqueues a message for the responsible agent and wakes it.
func (g *Ghost) post(m AgentMsg) {
	slot := g.slotFor(m.CPU)
	g.pending[slot] = append(g.pending[slot], m)
	if a := g.agents[slot]; a != nil {
		g.k.Wake(a)
	}
}

// cpusOf returns the CPUs an agent slot is responsible for.
func (g *Ghost) cpusOf(slot int) []int {
	if g.mode == ModeSOL {
		cpus := make([]int, 0, g.k.NumCPUs())
		for i := 0; i < g.k.NumCPUs(); i++ {
			if i != g.agentCPU {
				cpus = append(cpus, i)
			}
		}
		return cpus
	}
	return []int{slot}
}

// agentBehavior is the userspace agent loop: drain messages, run the
// policy, commit transactions, optionally poll for preemption.
func (g *Ghost) agentBehavior(slot int) kernel.Behavior {
	return kernel.BehaviorFunc(func(k *kernel.Kernel, t *kernel.Task) kernel.Action {
		g.AgentActivations++
		msgs := g.pending[slot]
		g.pending[slot] = nil
		for _, m := range msgs {
			g.policy.OnMessage(m)
		}
		cost := g.costs.AgentBase + time.Duration(len(msgs))*g.costs.AgentPerMsg

		commits := 0
		for _, cpu := range g.cpusOf(slot) {
			if g.committed[cpu] == 0 && g.currPID[cpu] == 0 {
				if pid, ok := g.policy.NextFor(cpu); ok {
					g.committed[cpu] = pid
					commits++
					if cpu != t.CPU() {
						k.Resched(cpu)
					}
				}
			}
		}
		cost += time.Duration(commits) * (g.costs.TxnCommit + g.costs.CommitApply)

		// µs-scale preemption: poll running tasks against the slice.
		if slice := g.policy.Slice(); slice > 0 {
			anyRunning := false
			now := k.Now()
			for _, cpu := range g.cpusOf(slot) {
				if g.currPID[cpu] == 0 {
					continue
				}
				anyRunning = true
				if g.policy.Pending() > 0 && now.Sub(g.pickedAt[cpu]) >= slice {
					k.Resched(cpu)
					// Optimistically requeue the preempted task
					// and commit its replacement now, so the CPU
					// does not idle until the next agent cycle
					// waiting for the MPreempt round trip.
					pid := g.currPID[cpu]
					g.policy.OnMessage(AgentMsg{Kind: MPreempt, PID: pid, CPU: cpu})
					if g.committed[cpu] == 0 {
						if npid, ok := g.policy.NextFor(cpu); ok {
							g.committed[cpu] = npid
							cost += g.costs.TxnCommit + g.costs.CommitApply
						}
					}
				}
			}
			if anyRunning {
				return kernel.Action{Run: cost, Op: kernel.OpSleep, SleepFor: slice}
			}
		}
		if g.mode == ModeSOL {
			// The latency-optimized global agent spins on its
			// dedicated core rather than sleeping; messages are
			// picked up within one poll chunk.
			return kernel.Action{Run: cost + g.costs.SpinPoll, Op: kernel.OpContinue}
		}
		return kernel.Action{Run: cost, Op: kernel.OpBlock}
	})
}

// --- kernel.Class ----------------------------------------------------------

// Name implements kernel.Class.
func (g *Ghost) Name() string { return "ghost-" + g.policy.Name() }

// OverheadPerCall implements kernel.Class: each crossing posts a message.
func (g *Ghost) OverheadPerCall() time.Duration { return g.costs.MsgPost }

// TaskNew implements kernel.Class.
func (g *Ghost) TaskNew(t *kernel.Task) {}

// TaskDead implements kernel.Class.
func (g *Ghost) TaskDead(t *kernel.Task) {
	if g.isAgent(t) {
		return
	}
	g.post(AgentMsg{Kind: MDead, PID: t.PID(), CPU: t.CPU(), Runtime: t.SumExec()})
}

// Detach implements kernel.Class.
func (g *Ghost) Detach(t *kernel.Task) {
	if !g.isAgent(t) {
		g.post(AgentMsg{Kind: MDead, PID: t.PID(), CPU: t.CPU(), Runtime: t.SumExec()})
	}
}

// Enqueue implements kernel.Class.
func (g *Ghost) Enqueue(cpu int, t *kernel.Task, wakeup bool) {
	if g.isAgent(t) {
		g.woken[agentSlot(t)] = true
		return
	}
	kind := MWakeup
	if _, known := g.tasks[t.PID()]; !known && t.SumExec() == 0 {
		kind = MNew
	}
	g.tasks[t.PID()] = t
	g.nqueued[cpu]++
	g.post(AgentMsg{Kind: kind, PID: t.PID(), CPU: cpu, Runtime: t.SumExec(), Allowed: t.Allowed().List()})
}

// Dequeue implements kernel.Class.
func (g *Ghost) Dequeue(cpu int, t *kernel.Task, sleep bool) {
	if g.isAgent(t) {
		g.woken[agentSlot(t)] = false
		return
	}
	if _, ok := g.tasks[t.PID()]; ok {
		delete(g.tasks, t.PID())
		if g.nqueued[cpu] > 0 {
			g.nqueued[cpu]--
		}
	}
	if g.currPID[cpu] == t.PID() {
		g.currPID[cpu] = 0
	}
	if sleep {
		g.post(AgentMsg{Kind: MBlocked, PID: t.PID(), CPU: cpu, Runtime: t.SumExec()})
	}
}

// Yield implements kernel.Class.
func (g *Ghost) Yield(cpu int, t *kernel.Task) {
	g.requeue(MYield, cpu, t)
}

// PutPrev implements kernel.Class.
func (g *Ghost) PutPrev(cpu int, t *kernel.Task, preempted bool) {
	g.requeue(MPreempt, cpu, t)
}

func (g *Ghost) requeue(kind MsgKind, cpu int, t *kernel.Task) {
	if g.isAgent(t) {
		g.woken[agentSlot(t)] = true
		return
	}
	if g.currPID[cpu] == t.PID() {
		g.currPID[cpu] = 0
	}
	g.tasks[t.PID()] = t
	g.nqueued[cpu]++
	g.post(AgentMsg{Kind: kind, PID: t.PID(), CPU: cpu, Runtime: t.SumExec()})
}

// PickNext implements kernel.Class: agents first, then the committed
// transaction if it still validates.
func (g *Ghost) PickNext(cpu int) *kernel.Task {
	slot := g.slotFor(cpu)
	if g.mode == ModePerCPU || cpu == g.agentCPU {
		if g.woken[slot] && g.agents[slot] != nil {
			g.woken[slot] = false
			return g.agents[slot]
		}
	}
	if pid := g.committed[cpu]; pid != 0 {
		g.committed[cpu] = 0
		t := g.tasks[pid]
		if t == nil || t.State() != kernel.StateRunnable || !t.Allowed().Has(cpu) {
			// Stale decision: the world changed while the agent ran.
			g.StaleCommits++
		} else {
			delete(g.tasks, pid)
			if g.nqueued[t.CPU()] > 0 {
				g.nqueued[t.CPU()]--
			}
			g.currPID[cpu] = pid
			g.pickedAt[cpu] = g.k.Now()
			// Applying the transaction costs kernel time; model it
			// by arming nothing and letting OverheadPerCall cover
			// the crossing plus CommitApply here via a no-op.
			return t
		}
	}
	// Nothing committed: if this CPU has queued work, make sure its agent
	// will run (the SOL agent spins and never needs waking).
	if g.mode == ModePerCPU && g.nqueued[cpu] > 0 && g.agents[slot] != nil {
		g.k.Wake(g.agents[slot])
	}
	return nil
}

// Tick implements kernel.Class: ghOSt drives preemption from agents, not
// ticks.
func (g *Ghost) Tick(cpu int, t *kernel.Task) {}

// SelectRQ implements kernel.Class: agents stay pinned; workload tasks keep
// their previous CPU (the agent's commit decides where they really run).
func (g *Ghost) SelectRQ(t *kernel.Task, prevCPU int, wakeup bool) int {
	if g.isAgent(t) {
		if g.mode == ModeSOL {
			return g.agentCPU
		}
		return prevCPU
	}
	if wakeup && t.Allowed().Has(prevCPU) && (g.mode == ModePerCPU || prevCPU != g.agentCPU) {
		return prevCPU
	}
	// Fork/forced placement: spread onto the least-loaded allowed CPU so
	// per-CPU FIFO queues start balanced (the agents never rebalance).
	best, bestLoad := -1, 1<<30
	for _, cpu := range t.Allowed().List() {
		if g.mode == ModeSOL && cpu == g.agentCPU {
			continue
		}
		load := g.nqueued[cpu]
		if g.currPID[cpu] != 0 {
			load++
		}
		if load < bestLoad {
			best, bestLoad = cpu, load
		}
	}
	if best >= 0 {
		return best
	}
	return prevCPU
}

// CheckPreempt implements kernel.Class: a woken agent preempts workload
// tasks immediately; workload wakeups wait for the agent's decision.
func (g *Ghost) CheckPreempt(cpu int, t *kernel.Task) {
	if g.isAgent(t) {
		g.k.Resched(cpu)
	}
}

// Balance implements kernel.Class: the agent owns placement.
func (g *Ghost) Balance(cpu int) {}

// Migrate implements kernel.Class.
func (g *Ghost) Migrate(t *kernel.Task, src, dst int) {
	if g.isAgent(t) {
		return
	}
	if _, ok := g.tasks[t.PID()]; ok {
		if g.nqueued[src] > 0 {
			g.nqueued[src]--
		}
		g.nqueued[dst]++
	}
}

// PrioChanged implements kernel.Class.
func (g *Ghost) PrioChanged(t *kernel.Task) {}

// AffinityChanged implements kernel.Class.
func (g *Ghost) AffinityChanged(t *kernel.Task) {}

// NRunnable implements kernel.Class.
func (g *Ghost) NRunnable(cpu int) int { return g.nqueued[cpu] }

// --- policies ---------------------------------------------------------------

// FIFOPolicy is ghOSt's per-CPU FIFO: one queue per CPU, tasks stay where
// their messages said they were.
type FIFOPolicy struct {
	queues map[int][]int
}

// NewFIFOPolicy builds the per-CPU FIFO policy.
func NewFIFOPolicy() *FIFOPolicy { return &FIFOPolicy{queues: make(map[int][]int)} }

// Name implements AgentPolicy.
func (p *FIFOPolicy) Name() string { return "fifo" }

// OnMessage implements AgentPolicy.
func (p *FIFOPolicy) OnMessage(m AgentMsg) {
	switch m.Kind {
	case MNew, MWakeup, MPreempt, MYield:
		p.remove(m.PID)
		p.queues[m.CPU] = append(p.queues[m.CPU], m.PID)
	case MBlocked, MDead:
		p.remove(m.PID)
	}
}

func (p *FIFOPolicy) remove(pid int) {
	for cpu, q := range p.queues {
		for i, v := range q {
			if v == pid {
				p.queues[cpu] = append(append([]int{}, q[:i]...), q[i+1:]...)
				return
			}
		}
	}
}

// NextFor implements AgentPolicy.
func (p *FIFOPolicy) NextFor(cpu int) (int, bool) {
	q := p.queues[cpu]
	if len(q) == 0 {
		return 0, false
	}
	pid := q[0]
	p.queues[cpu] = q[1:]
	return pid, true
}

// Slice implements AgentPolicy: run to block.
func (p *FIFOPolicy) Slice() time.Duration { return 0 }

// Pending implements AgentPolicy.
func (p *FIFOPolicy) Pending() int {
	n := 0
	for _, q := range p.queues {
		n += len(q)
	}
	return n
}

// GlobalPolicy is a single global FCFS queue — the SOL arrangement's
// policy, optionally with a Shinjuku-style preemption quantum. Tasks prefer
// the CPU they last ran on (cache warmth); the oldest arrival wins
// otherwise.
type GlobalPolicy struct {
	queue   []int
	allowed map[int][]int
	lastCPU map[int]int
	slice   time.Duration
	name    string
}

// NewSOLPolicy builds the latency-optimized global FIFO (no preemption).
func NewSOLPolicy() *GlobalPolicy {
	return &GlobalPolicy{allowed: make(map[int][]int), lastCPU: make(map[int]int), name: "sol"}
}

// NewShinjukuPolicy builds the ghOSt version of Shinjuku: global FCFS with
// the given preemption quantum.
func NewShinjukuPolicy(slice time.Duration) *GlobalPolicy {
	return &GlobalPolicy{allowed: make(map[int][]int), lastCPU: make(map[int]int), slice: slice, name: "shinjuku"}
}

// Name implements AgentPolicy.
func (p *GlobalPolicy) Name() string { return p.name }

// OnMessage implements AgentPolicy.
func (p *GlobalPolicy) OnMessage(m AgentMsg) {
	switch m.Kind {
	case MNew, MWakeup, MPreempt, MYield:
		p.remove(m.PID)
		p.queue = append(p.queue, m.PID)
		p.lastCPU[m.PID] = m.CPU
		if m.Kind == MNew && len(m.Allowed) > 0 {
			p.allowed[m.PID] = m.Allowed
		}
	case MBlocked, MDead:
		p.remove(m.PID)
		if m.Kind == MDead {
			delete(p.allowed, m.PID)
			delete(p.lastCPU, m.PID)
		}
	}
}

func (p *GlobalPolicy) remove(pid int) {
	for i, v := range p.queue {
		if v == pid {
			p.queue = append(append([]int{}, p.queue[:i]...), p.queue[i+1:]...)
			return
		}
	}
}

func (p *GlobalPolicy) allows(pid, cpu int) bool {
	a, ok := p.allowed[pid]
	if !ok {
		return true
	}
	for _, c := range a {
		if c == cpu {
			return true
		}
	}
	return false
}

// NextFor implements AgentPolicy: prefer the oldest arrival that last ran
// on cpu (cache warmth), falling back to the oldest allowed arrival.
func (p *GlobalPolicy) NextFor(cpu int) (int, bool) {
	pick := -1
	for i, pid := range p.queue {
		if !p.allows(pid, cpu) {
			continue
		}
		if p.lastCPU[pid] == cpu {
			pick = i
			break
		}
		if pick == -1 {
			pick = i
		}
	}
	if pick == -1 {
		return 0, false
	}
	pid := p.queue[pick]
	p.queue = append(append([]int{}, p.queue[:pick]...), p.queue[pick+1:]...)
	return pid, true
}

// Slice implements AgentPolicy.
func (p *GlobalPolicy) Slice() time.Duration { return p.slice }

// Pending implements AgentPolicy.
func (p *GlobalPolicy) Pending() int { return len(p.queue) }
