package shinjuku_test

import (
	"testing"
	"time"

	"enoki/internal/core"
	"enoki/internal/enokic"
	"enoki/internal/kernel"
	"enoki/internal/sched/shinjuku"
	"enoki/internal/sim"
)

const (
	policyCFS  = 0
	policyShin = 8
)

func rig() (*kernel.Kernel, *enokic.Adapter) {
	eng := sim.New()
	k := kernel.New(eng, kernel.Machine8(), kernel.DefaultCosts())
	a := enokic.Load(k, policyShin, enokic.DefaultConfig(), func(env core.Env) core.Scheduler {
		return shinjuku.New(env, policyShin, 10*time.Microsecond)
	})
	k.RegisterClass(policyCFS, kernel.NewCFS(k))
	return k, a
}

func spin(total, chunk time.Duration) kernel.Behavior {
	remaining := total
	return kernel.BehaviorFunc(func(k *kernel.Kernel, t *kernel.Task) kernel.Action {
		if remaining <= 0 {
			return kernel.Action{Op: kernel.OpExit}
		}
		c := chunk
		if c > remaining {
			c = remaining
		}
		remaining -= c
		return kernel.Action{Run: c, Op: kernel.OpContinue}
	})
}

func TestCompletesAndValidates(t *testing.T) {
	k, a := rig()
	done := 0
	for i := 0; i < 10; i++ {
		k.Spawn("w", policyShin, spin(2*time.Millisecond, 100*time.Microsecond),
			kernel.WithExitObserver(func() { done++ }))
	}
	k.RunFor(100 * time.Millisecond)
	if done != 10 {
		t.Fatalf("completed %d/10", done)
	}
	if st := a.Stats(); st.PntErrs != 0 {
		t.Fatalf("pnt_errs: %+v", st)
	}
}

func TestMicrosecondPreemption(t *testing.T) {
	// A long request must be sliced at ~10µs so short requests behind it
	// complete quickly — the core Shinjuku property (Fig 2a).
	k, a := rig()
	mask := kernel.SingleCPU(3)
	k.Spawn("long", policyShin, spin(10*time.Millisecond, 10*time.Millisecond),
		kernel.WithAffinity(mask))
	k.RunFor(time.Millisecond)
	start := k.Now()
	var lat []time.Duration
	for i := 0; i < 5; i++ {
		k.Spawn("short", policyShin, spin(4*time.Microsecond, 4*time.Microsecond),
			kernel.WithAffinity(mask),
			kernel.WithExitObserver(func() { lat = append(lat, k.Now().Sub(start)) }))
	}
	k.RunFor(20 * time.Millisecond)
	if len(lat) != 5 {
		t.Fatalf("short requests finished: %d/5", len(lat))
	}
	for _, d := range lat {
		if d > time.Millisecond {
			t.Fatalf("short request waited %v; 10µs preemption not working", d)
		}
	}
	sched := a.Scheduler().(*shinjuku.Sched)
	if sched.Preemptions == 0 {
		t.Fatal("no preemptions recorded")
	}
}

func TestGlobalFCFSBalancing(t *testing.T) {
	// Tasks stacked on one queue spread to idle CPUs in arrival order.
	k, a := rig()
	done := 0
	for i := 0; i < 8; i++ {
		k.Spawn("q", policyShin, spin(5*time.Millisecond, 100*time.Microsecond),
			kernel.WithAffinity(kernel.SingleCPU(0)),
			kernel.WithExitObserver(func() { done++ }))
	}
	k.RunFor(time.Millisecond)
	for pid := 1; pid <= 8; pid++ {
		if task := k.TaskByPID(pid); task != nil {
			k.SetAffinity(task, kernel.AllCPUs(8))
		}
	}
	k.RunFor(100 * time.Millisecond)
	if done != 8 {
		t.Fatalf("completed %d/8", done)
	}
	if a.Stats().Migrations == 0 {
		t.Fatal("no cross-queue pulls despite idle CPUs")
	}
}

func TestLiveUpgradeKeepsQueueOrder(t *testing.T) {
	k, a := rig()
	done := 0
	for i := 0; i < 6; i++ {
		k.Spawn("w", policyShin, spin(10*time.Millisecond, 200*time.Microsecond),
			kernel.WithExitObserver(func() { done++ }))
	}
	k.RunFor(2 * time.Millisecond)
	k.Engine().After(0, func() {
		a.Upgrade(func(env core.Env) core.Scheduler {
			return shinjuku.New(env, policyShin, 10*time.Microsecond)
		}, nil)
	})
	k.RunFor(200 * time.Millisecond)
	if done != 6 {
		t.Fatalf("tasks lost across upgrade: %d/6", done)
	}
}
