# Development entry points. `make check` is the tier-1 gate; `make bench`
# regenerates the hot-path benchmark snapshot committed as
# BENCH_hotpath.json (compare runs with benchstat on `go test -bench` output).

GO ?= go

.PHONY: check build test race vet bench bench-cluster bench-fleet bench-rollout bench-overload fleet rollout overload sharded verified quick cover fuzz trace apicheck chaos

check: vet build race apicheck

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) run ./cmd/enokibench -benchjson BENCH_hotpath.json

# Cluster-scale throughput snapshot: single-kernel vs sharded simulation at
# 80 and 1,000 CPUs, committed as BENCH_cluster.json.
bench-cluster:
	$(GO) run ./cmd/enokibench -cluster BENCH_cluster.json

# Full fleet artifact: the cluster sweep plus the 1,000-machine ×
# million-job fleet benchmark (serial and parallel drives, machine failure
# mid-run), with its SLO verdicts appended to BENCH_cluster.json. Budget a
# few minutes of wall time.
bench-fleet:
	$(GO) run ./cmd/enokibench -fleet BENCH_cluster.json

# Full rollout artifact: everything bench-fleet writes plus the canary
# rollout benchmark — a clean thousand-machine upgrade, a sabotaged one
# that halts and rolls back, both serial and parallel, and the pinned
# `r1:` chaos replay — appended to BENCH_cluster.json.
bench-rollout:
	$(GO) run ./cmd/enokibench -rollout BENCH_cluster.json

# Full overload artifact: everything bench-rollout writes plus the
# traffic-plane overload benchmark — an open-loop scenario (diurnal curve,
# flash crowd, antagonist tenant, churn storm) through the
# admission/shedding/brownout control plane, serial and parallel, with the
# pinned `t1:` LeakShed chaos replay — appended to BENCH_cluster.json.
# This is the superset that regenerates the committed artifact; CI also
# runs it at -machine 80, where the scenario offers 1.26M connections.
bench-overload:
	$(GO) run ./cmd/enokibench -overload BENCH_cluster.json

# Fleet gate mirroring the CI job: the whole cluster control plane under the
# race detector — placement, migration, failover, Close lifecycle — plus the
# fleet executor's serial-vs-parallel identity, the machine-kill chaos
# replay, and the scaled-down fleet benchmark's fingerprint check.
fleet:
	$(GO) test -race -count=1 ./internal/cluster
	$(GO) test -race -run 'TestFleet' -count=1 ./internal/sim ./internal/chaos ./internal/bench

# Rollout gate mirroring the CI job: the canary-upgrade state machine under
# the race detector — serial-vs-parallel identity of clean and halted
# campaigns, machine death mid-wave, the r1: chaos-replay conformance suite
# with ddmin minimization, the rollout-spec fuzz corpus, and the public
# Cluster.Rollout API.
rollout:
	$(GO) test -race -run 'TestRollout|TestClusterRollout|FuzzParseRolloutSpec' -count=1 ./internal/cluster ./internal/chaos ./internal/bench .

# Overload gate mirroring the CI job: the admission/brownout control plane
# under the race detector — per-class shedding, bounded retry backoff,
# brownout hysteresis, and the 0 allocs/op Admit ratchet — the traffic
# plane's flash-crowd, churn, antagonist, module-kill and serial-vs-parallel
# tests, the 30-run t1: traffic chaos campaign with the LeakShed
# find→shrink→replay loop, the cluster Offer front door, the public
# DriveTraffic/WithAdmission API, and the overload artifact smoke.
overload:
	$(GO) test -race -count=1 ./internal/overload ./internal/workload/traffic
	$(GO) test -race -run 'TestTraffic|TestParseTrafficSpec|TestGenerateTraffic|TestRunTraffic|FuzzParseTrafficSpec' -count=1 ./internal/chaos
	$(GO) test -race -run 'TestDriveTraffic|TestWithBrownout|TestClusterOfferAdmission|TestTrafficFleetDriver' -count=1 .
	$(GO) test -race -run 'TestOffer|TestSubmitBypassesAdmission' -count=1 ./internal/cluster
	$(GO) test -race -run 'TestRunOverloadSmoke' -count=1 ./internal/bench

# Sharded-executor gate mirroring the CI job: serial-vs-parallel record-log
# identity and conformance for every scheduler class under the race detector,
# plus the sharded allocation ratchet.
sharded:
	$(GO) test -race -run 'TestSharded' -count=1 ./internal/sim ./internal/schedtest/conformance ./internal/chaos
	$(GO) test -race -run 'TestRemoteWake|TestScheduleOpShardedZeroAlloc' -count=1 ./internal/kernel

# Verified-tier gate mirroring the CI job: the bytecode verifier, interpreter
# and fault road under the race detector; the verified class through the
# 7-class conformance suite on Machine80 (including serial-vs-sharded record
# identity); the verified chaos smoke; the three-tier Attach API; and the
# interpreted-pick allocation ratchet.
verified:
	$(GO) test -race -count=1 ./internal/vpol
	$(GO) test -race -run 'TestVerified' -count=1 ./internal/schedtest/conformance ./internal/chaos
	$(GO) test -race -run 'TestCampaignVerifiedTierSmoke|TestAttach' -count=1 ./internal/chaos .
	$(GO) test -race -run 'TestScheduleOpVerifiedFIFOZeroAlloc' -count=1 ./internal/kernel

# Public-API compatibility gate for package enoki: apidiff when installed,
# textual surface diff against api/enoki.txt otherwise. Refresh the baseline
# after deliberate API changes with `scripts/apicheck.sh -update`.
apicheck:
	./scripts/apicheck.sh

# Fast full-suite pass of every table/figure, fanned out across all cores.
quick:
	$(GO) run ./cmd/enokibench -quick -parallel $$($(GO) env GOMAXPROCS 2>/dev/null || nproc)

# Coverage report mirroring the CI ratchet job.
cover:
	$(GO) test -count=1 -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

# Short local fuzz pass over the untrusted-input decoders (CI runs the same
# two targets for 30s each).
FUZZTIME ?= 30s
fuzz:
	$(GO) test -fuzz=FuzzLoad -fuzztime=$(FUZZTIME) ./internal/record
	$(GO) test -fuzz=FuzzBuffer -fuzztime=$(FUZZTIME) ./internal/ringbuf
	$(GO) test -fuzz=FuzzVerify -fuzztime=$(FUZZTIME) ./internal/vpol
	$(GO) test -fuzz=FuzzAssemble -fuzztime=$(FUZZTIME) ./internal/vpol

# Seeded chaos campaign under the race detector: fault schedules round-robin
# across every scheduler class, judged by the invariant oracle; any failure
# is minimized and printed as a one-line `enoki-chaos -replay` reproducer
# (the exit code fails the build). The second step is the allocation ratchet
# proving the disarmed fault hooks add nothing to the schedule hot path.
CHAOS_RUNS ?= 70
CHAOS_SEED ?= 0xe120c1
chaos:
	$(GO) run -race ./cmd/enoki-chaos -runs $(CHAOS_RUNS) -seed $(CHAOS_SEED)
	$(GO) test -race -run TestScheduleOpChaosIdleZeroAlloc -count=1 ./internal/kernel

# Render the fixed-seed demo timeline to trace.json for Perfetto.
trace:
	$(GO) run ./cmd/enoki-trace -demo -sched wfq -o trace.json
