// Package replay runs recorded scheduler logs against the exact same module
// code at userspace (§3.4). It implements "a replacement version of
// libEnoki": messages are fed back through core.Dispatch in recorded order,
// one goroutine per recorded message named with the originating kernel
// thread; module locks are replaced with gating locks that admit threads in
// the recorded acquisition order; and every reply is validated against the
// recorded one, flagging divergences.
package replay

import (
	"fmt"
	"io"
	"sync"
	"time"

	"enoki/internal/core"
	"enoki/internal/gls"
	"enoki/internal/ktime"
	"enoki/internal/record"
)

// Result summarises a replay run.
type Result struct {
	// Messages is how many scheduler messages replayed.
	Messages int
	// LockOps is how many lock operations gated the replay.
	LockOps int
	// Divergences lists replies that differed from the recording
	// (truncated at 50).
	Divergences []string
	// Elapsed is host wall-clock time spent replaying.
	Elapsed time.Duration
	// ParseTime is host wall-clock spent loading and indexing the log.
	ParseTime time.Duration
}

// replayLock admits acquirers in the recorded order.
type replayLock struct {
	name  string
	mu    sync.Mutex
	cond  *sync.Cond
	order []int // thread ids, in recorded acquisition order
	next  int
	held  bool
}

func newReplayLock(name string) *replayLock {
	l := &replayLock{name: name}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// Lock implements core.Locker: block until it is this thread's turn.
func (l *replayLock) Lock() {
	tid := gls.Get()
	l.mu.Lock()
	for l.held || (l.next < len(l.order) && l.order[l.next] != tid) {
		l.cond.Wait()
	}
	l.held = true
	if l.next < len(l.order) {
		l.next++
	}
	l.mu.Unlock()
}

// Unlock implements core.Locker.
func (l *replayLock) Unlock() {
	l.mu.Lock()
	l.held = false
	l.cond.Broadcast()
	l.mu.Unlock()
}

// env is the userspace replacement for the kernel environment: time comes
// from the recorded messages, timers and rescheds are outputs (ignored),
// locks gate on the recorded order.
type env struct {
	numCPUs int
	topo    *core.Topology
	locks   []*replayLock
	nlocks  int
	now     int64
	nowMu   sync.Mutex
	rand    *ktime.Rand
}

var _ core.Env = (*env)(nil)

func (e *env) Now() ktime.Time {
	e.nowMu.Lock()
	defer e.nowMu.Unlock()
	return ktime.Time(e.now)
}

func (e *env) setNow(t int64) {
	e.nowMu.Lock()
	if t > e.now {
		e.now = t
	}
	e.nowMu.Unlock()
}

func (e *env) NumCPUs() int           { return e.numCPUs }
func (e *env) SameNode(a, b int) bool { return e.topo.SameNode(a, b) }

// Topology implements core.Env: the topology the replay was configured with,
// or a flat single-domain view when the caller supplied none. Modules whose
// decisions depend on domain structure must be replayed with the recorded
// machine's topology to reproduce bit-identically.
func (e *env) Topology() *core.Topology          { return e.topo }

func (e *env) ArmTimer(cpu int, d time.Duration) {}
func (e *env) Resched(cpu int)                   {}
func (e *env) Rand() *ktime.Rand                 { return e.rand }
func (e *env) NewMutex(name string) core.Locker {
	if e.nlocks < len(e.locks) {
		l := e.locks[e.nlocks]
		e.nlocks++
		if l.name != "" && l.name != name {
			// Locks must be created in the same order as recorded.
			panic(fmt.Sprintf("replay: lock %d created as %q, recorded as %q",
				e.nlocks-1, name, l.name))
		}
		return l
	}
	// A lock the recording never saw: ungated.
	e.nlocks++
	return newReplayLock(name)
}

// Config tunes a replay run.
type Config struct {
	// NumCPUs must match the recorded machine.
	NumCPUs int
	// Topology optionally supplies the recorded machine's scheduling
	// domains. Nil replays against a flat single-domain topology, which is
	// exact for modules that never consult domain structure.
	Topology *core.Topology
	// RandSeed must match the recorded module's stream.
	RandSeed uint64
	// MaxDivergences caps the report.
	MaxDivergences int
}

// Replay loads a record log from rd and replays it against a fresh module
// built by factory.
func Replay(rd io.Reader, cfg Config, factory func(core.Env) core.Scheduler) (*Result, error) {
	parseStart := time.Now()
	entries, err := record.Load(rd)
	if err != nil {
		return nil, fmt.Errorf("replay: loading log: %w", err)
	}
	return ReplayEntries(entries, cfg, factory, parseStart)
}

// ReplayEntries replays an already-loaded log.
func ReplayEntries(entries []record.Entry, cfg Config, factory func(core.Env) core.Scheduler, parseStart time.Time) (*Result, error) {
	if cfg.MaxDivergences == 0 {
		cfg.MaxDivergences = 50
	}
	if cfg.RandSeed == 0 {
		cfg.RandSeed = 0x5eed
	}
	res := &Result{}

	// Pass 1: per-lock acquisition orders, differentiated by lock id (the
	// analogue of the paper's lock address).
	var locks []*replayLock
	for _, e := range entries {
		if e.Lock == nil {
			continue
		}
		res.LockOps++
		for len(locks) <= e.Lock.LockID {
			locks = append(locks, newReplayLock(""))
		}
		l := locks[e.Lock.LockID]
		switch e.Lock.Op {
		case core.LockCreate:
			l.name = e.Lock.Name
		case core.LockAcquire:
			l.order = append(l.order, e.Lock.Thread)
		}
	}
	res.ParseTime = time.Since(parseStart)

	replayStart := time.Now()
	topo := cfg.Topology
	if topo == nil {
		topo = core.FlatTopology(cfg.NumCPUs)
	}
	renv := &env{numCPUs: cfg.NumCPUs, topo: topo, locks: locks, rand: ktime.NewRand(cfg.RandSeed)}
	sched := factory(renv)

	queues := make(map[int]*core.HintQueue)
	divMu := sync.Mutex{}
	diverge := func(format string, args ...any) {
		divMu.Lock()
		defer divMu.Unlock()
		if len(res.Divergences) < cfg.MaxDivergences {
			res.Divergences = append(res.Divergences, fmt.Sprintf(format, args...))
		}
	}

	// Pass 2: thread-per-message replay. Messages from the same kernel
	// thread chain sequentially (a kernel thread calls synchronously);
	// cross-thread interleaving is governed by the gating locks.
	var wg sync.WaitGroup
	prevOfThread := make(map[int]chan struct{})
	for _, e := range entries {
		if e.Msg == nil {
			continue
		}
		m := e.Msg
		res.Messages++
		prev := prevOfThread[m.Thread]
		done := make(chan struct{})
		prevOfThread[m.Thread] = done
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer close(done)
			if prev != nil {
				<-prev
			}
			gls.Set(m.Thread)
			defer gls.Clear()
			renv.setNow(m.Now)
			replayOne(sched, m, queues, diverge)
		}()
	}
	wg.Wait()
	res.Elapsed = time.Since(replayStart)
	return res, nil
}

// replayOne dispatches a single recorded message against the module and
// validates the reply.
func replayOne(sched core.Scheduler, m *core.Message, queues map[int]*core.HintQueue,
	diverge func(string, ...any)) {
	switch m.Kind {
	case core.MsgRegisterQueue:
		q := core.NewHintQueue(m.Count)
		id := sched.RegisterQueue(q)
		queues[id] = q
		if id != m.QueueID {
			diverge("seq %d: register_queue returned id %d, recorded %d", m.Seq, id, m.QueueID)
		}
		return
	case core.MsgRegisterRevQueue:
		sched.RegisterReverseQueue(core.NewRevQueue(m.Count))
		return
	case core.MsgUnregisterQueue:
		sched.UnregisterQueue(m.QueueID)
		return
	case core.MsgUnregisterRevQueue:
		sched.UnregisterRevQueue(m.QueueID)
		return
	case core.MsgHintPush:
		if q := queues[m.QueueID]; q != nil {
			q.Push(m.Hint)
		}
		return
	case core.MsgModuleFault:
		// The framework killed the module here; nothing to replay — the
		// log simply ends (or continues without this module's messages).
		return
	}

	cp := *m
	cp.RetSched, cp.RetCPU, cp.RetPID, cp.RetOK = nil, 0, 0, false
	core.Dispatch(sched, &cp)
	switch m.Kind {
	case core.MsgPickNextTask, core.MsgTaskDeparted, core.MsgMigrateTaskRQ:
		if !cp.RetSched.Equal(m.RetSched) {
			diverge("seq %d (%v): returned %+v, recorded %+v", m.Seq, m.Kind, cp.RetSched, m.RetSched)
		}
	case core.MsgSelectTaskRQ:
		if cp.RetCPU != m.RetCPU {
			diverge("seq %d (select_task_rq): returned cpu %d, recorded %d", m.Seq, cp.RetCPU, m.RetCPU)
		}
	case core.MsgBalance:
		if cp.RetOK != m.RetOK || cp.RetPID != m.RetPID {
			diverge("seq %d (balance): returned (%d,%v), recorded (%d,%v)",
				m.Seq, cp.RetPID, cp.RetOK, m.RetPID, m.RetOK)
		}
	}
}
