package chaos

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"enoki/internal/cluster"
)

// rolloutSpec is the pinned rollout-fault reproducer: two machine kills
// plus a faulty new generation above a threshold, landing while the canary
// waves are in flight. The clean machinery halts the rollout and rolls the
// fleet back; the whole scenario replays from this one line. The seed was
// chosen so at least one kill hits a machine already claimed by a wave; if
// GenerateRollout's draw logic changes, re-pick a seed with the same
// property.
const rolloutSpec = "r1:wfq:9:7"

// TestRolloutCampaignReplayFromSpec is the rollout chaos gate: the
// one-line spec reconstructs the exact fault plan, the campaign halts and
// rolls back under it without violating any oracle rule, and the serial
// and worker-goroutine drives of the same spec agree on every outcome and
// every record-log byte.
func TestRolloutCampaignReplayFromSpec(t *testing.T) {
	s, err := ParseRolloutSpec(rolloutSpec)
	if err != nil {
		t.Fatalf("ParseRolloutSpec(%q): %v", rolloutSpec, err)
	}
	if got := s.Spec(); got != rolloutSpec {
		t.Fatalf("spec round-trip: %q -> %q", rolloutSpec, got)
	}
	if len(s.Enabled()) != 3 {
		t.Fatalf("spec %q enables %d events, want 3", rolloutSpec, len(s.Enabled()))
	}

	serial := RolloutCampaign(s, RolloutRunConfig{})
	par := RolloutCampaign(s, RolloutRunConfig{Parallel: true})

	for _, v := range serial.Violations {
		t.Errorf("serial: %s", v)
	}
	for _, v := range par.Violations {
		t.Errorf("parallel: %s", v)
	}
	if serial.Stats != par.Stats {
		t.Fatalf("stats diverge:\nserial   %+v\nparallel %+v", serial.Stats, par.Stats)
	}
	if !reflect.DeepEqual(serial.Report, par.Report) {
		t.Fatalf("rollout reports diverge:\nserial   %+v\nparallel %+v", serial.Report, par.Report)
	}
	if !reflect.DeepEqual(serial.Slots, par.Slots) {
		t.Fatalf("slot states diverge:\nserial   %+v\nparallel %+v", serial.Slots, par.Slots)
	}
	for i := range serial.Jobs {
		if serial.Jobs[i] != par.Jobs[i] {
			t.Fatalf("job %d diverges:\nserial   %+v\nparallel %+v", i, serial.Jobs[i], par.Jobs[i])
		}
	}
	total := 0
	for mi := range serial.Logs {
		for sh := range serial.Logs[mi] {
			if !bytes.Equal(serial.Logs[mi][sh], par.Logs[mi][sh]) {
				t.Fatalf("machine %d shard %d: record logs diverge (%d vs %d bytes)",
					mi, sh, len(serial.Logs[mi][sh]), len(par.Logs[mi][sh]))
			}
			total += len(serial.Logs[mi][sh])
		}
	}
	if total == 0 {
		t.Fatal("record logs are empty — modules saw no scheduling traffic")
	}
	// The replay must exercise the halt-and-rollback path, or the identity
	// proves nothing about the rollout machinery.
	if !serial.Report.Halted || serial.Report.RolledBack == 0 || serial.Report.Dead == 0 {
		t.Fatalf("pinned spec no longer halts with deaths and rollbacks: %+v", serial.Report)
	}
}

// TestRolloutCampaignCleanSweep runs a seeded campaign across three module
// classes with the fix in place: every run must uphold every oracle rule,
// and collectively the sweep must exercise both halted and completed
// rollouts so the rules are not passing vacuously.
func TestRolloutCampaignCleanSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign sweep is seconds of work; skipped in -short")
	}
	classes := []string{"fifo", "wfq", "shinjuku"}
	halted, completed := 0, 0
	for seed := uint64(1); seed <= 12; seed++ {
		class := classes[int(seed)%len(classes)]
		s := GenerateRollout(seed, class)
		r := RolloutCampaign(s, RolloutRunConfig{})
		for _, v := range r.Violations {
			t.Errorf("seed %x class %s (%s): %s", seed, class, s.Spec(), v)
		}
		if r.Report.Halted {
			halted++
		}
		if r.Report.Completed {
			completed++
		}
	}
	if halted == 0 || completed == 0 {
		t.Fatalf("sweep outcomes not diverse: %d halted, %d completed — the oracle is passing vacuously", halted, completed)
	}
}

// TestRolloutCampaignCatchesSeededBug is the conformance contract for the
// whole plane: with the death-resolution fix disabled, a seeded campaign
// must produce failures, and every failure must ddmin-minimize to a
// one-line r1: spec that reproduces the same oracle verdict.
func TestRolloutCampaignCatchesSeededBug(t *testing.T) {
	if testing.Short() {
		t.Skip("minimization re-runs campaigns; skipped in -short")
	}
	rc := RolloutRunConfig{NoDeathResolve: true}
	caught := 0
	for seed := uint64(1); seed <= 9 && caught < 2; seed++ {
		s := GenerateRollout(seed, "wfq")
		r := RolloutCampaign(s, rc)
		if !r.Failed() {
			continue // this seed's kills missed every in-flight wave slot
		}
		caught++
		min, minRes := MinimizeRollout(s, rc)
		if !minRes.Failed() {
			t.Fatalf("seed %x: minimized schedule no longer fails", seed)
		}
		// The hang needs exactly one event: the kill that strands the wave.
		if min.EnabledCount() != 1 {
			t.Errorf("seed %x: minimized to %d events (%v), want 1", seed, min.EnabledCount(), min.Enabled())
		}
		if min.Enabled()[0].Plane != PlaneRolloutKill {
			t.Errorf("seed %x: minimal event is %v, want a rollout kill", seed, min.Enabled()[0])
		}
		// The one-line spec alone reproduces the same verdict.
		replay, err := ParseRolloutSpec(min.Spec())
		if err != nil {
			t.Fatalf("seed %x: minimized spec %q does not parse: %v", seed, min.Spec(), err)
		}
		rr := RolloutCampaign(replay, rc)
		if !reflect.DeepEqual(rr.Violations, minRes.Violations) {
			t.Errorf("seed %x: replayed verdict diverges:\nminimized %v\nreplayed  %v",
				seed, minRes.Violations, rr.Violations)
		}
		// And with the fix back in place the same spec passes clean —
		// pinning that the oracle blamed the bug, not the fault plan.
		if fixed := RolloutCampaign(replay, RolloutRunConfig{}); fixed.Failed() {
			t.Errorf("seed %x: fixed machinery still fails minimized spec %q: %v",
				seed, min.Spec(), fixed.Violations)
		}
	}
	if caught == 0 {
		t.Fatal("no seed produced a failure under the seeded bug — the campaign has lost its teeth")
	}
}

// TestRolloutCampaignSlotBalance spot-checks the balance rule's inputs on
// a halting run: final slot states are terminal and each report count
// matches its slot population.
func TestRolloutCampaignSlotBalance(t *testing.T) {
	s, err := ParseRolloutSpec(rolloutSpec)
	if err != nil {
		t.Fatal(err)
	}
	r := RolloutCampaign(s, RolloutRunConfig{})
	if !r.Resolved {
		t.Fatal("campaign rollout unresolved")
	}
	counts := map[cluster.SlotState]int{}
	for _, sl := range r.Slots {
		counts[sl.State]++
	}
	if counts[cluster.SlotUpgrading]+counts[cluster.SlotObserving]+
		counts[cluster.SlotRollingBack]+counts[cluster.SlotFailed] != 0 {
		t.Fatalf("transient slot states at resolution: %v", counts)
	}
	if counts[cluster.SlotHealthy] != r.Report.Upgraded ||
		counts[cluster.SlotRolledBack] != r.Report.RolledBack ||
		counts[cluster.SlotDead] != r.Report.Dead {
		t.Fatalf("report/slot mismatch: %v vs %+v", counts, r.Report)
	}
}

// TestRolloutSpecErrors pins the parser's rejection of malformed specs.
func TestRolloutSpecErrors(t *testing.T) {
	for _, spec := range []string{
		"f1:wfq:9:7",    // fleet prefix on a rollout parser
		"r1:nosuch:9:7", // unknown class
		"r1:cfs:9:7",    // class without an upgradable module
		"r1:wfq:zz:7",   // bad seed hex
		"r1:wfq:9:gg",   // bad mask hex
		"r1:wfq:9",      // missing mask
		"r1:wfq:9:7:x",  // trailing part
		"r1",            // truncated
		"",              // empty
	} {
		if _, err := ParseRolloutSpec(spec); err == nil {
			t.Errorf("ParseRolloutSpec(%q) succeeded, want error", spec)
		}
	}
}

// TestRolloutCampaignSeedsDiffer guards against the campaign ignoring its
// seed: different seeds must not produce identical runs.
func TestRolloutCampaignSeedsDiffer(t *testing.T) {
	a := RolloutCampaign(GenerateRollout(0xa11ce, "wfq"), RolloutRunConfig{})
	b := RolloutCampaign(GenerateRollout(0xf1ee7, "wfq"), RolloutRunConfig{})
	if fmt.Sprint(a.Stats) == fmt.Sprint(b.Stats) && reflect.DeepEqual(a.Report, b.Report) {
		t.Fatal("different seeds produced identical rollout runs — the plan is not seed-sensitive")
	}
}
