package conformance

import (
	"bytes"
	"testing"
	"time"

	"enoki/internal/core"
	"enoki/internal/enokic"
	"enoki/internal/kernel"
	"enoki/internal/record"
	"enoki/internal/sched/wfq"
	"enoki/internal/sim"
)

// TestConformanceNUMAMachine80 runs every scheduler class on the two-socket
// Xeon with affinity churn that drags tasks across sockets, and asserts the
// same invariants as the 8-core suite: every task completes (a wake lost on
// a cross-socket IPI would strand its sleeper), the task table drains, and
// the checker saw no double-runs or affinity breaches.
func TestConformanceNUMAMachine80(t *testing.T) {
	for _, c := range Cases() {
		t.Run(c.Name, func(t *testing.T) {
			r := NewRigOn(c, kernel.Machine80(), enokic.DefaultConfig(), nil)
			ch := StartChecker(r, 500*time.Microsecond)
			w := Workload{Seed: 0x80, Tasks: 120, Churn: true}
			done := w.Run(r)

			if done != w.Tasks {
				t.Errorf("%d/%d tasks completed — lost wakeups across sockets", done, w.Tasks)
			}
			if n := r.K.NumTasks(); n != 0 {
				t.Errorf("%d tasks leaked in the kernel table", n)
			}
			for _, v := range ch.Violations {
				t.Errorf("invariant violation: %v", v)
			}
			if r.Adapter != nil {
				if r.Adapter.Killed() {
					t.Fatalf("healthy module was killed: %+v", r.Adapter.Failure())
				}
				if st := r.Adapter.Stats(); st.PntErrs != 0 {
					t.Errorf("module produced %d pick errors", st.PntErrs)
				}
			}
		})
	}
}

// recordedRun drives one seeded WFQ workload on Machine80 with the batched
// IPI path on or off and returns the raw record-log bytes plus the kernel
// for counter inspection.
func recordedRun(t *testing.T, batched bool) ([]byte, *kernel.Kernel) {
	t.Helper()
	eng := sim.New()
	m := kernel.Machine80()
	k := kernel.New(eng, m, kernel.CostsFor(m))
	k.SetIPIBatching(batched)
	ad := enokic.Load(k, PolicyTest, enokic.DefaultConfig(), func(env core.Env) core.Scheduler {
		return wfq.New(env, PolicyTest)
	})
	k.RegisterClass(PolicyCFS, kernel.NewCFS(k))
	var buf bytes.Buffer
	rec := record.New(k, &buf, PolicyCFS, record.DefaultCosts())
	ad.SetRecorder(rec)

	r := &Rig{K: k, Adapter: ad, Policy: PolicyTest}
	w := Workload{Seed: 42, Tasks: 80, Churn: true, Budget: 300 * time.Millisecond}
	if done := w.Run(r); done != w.Tasks {
		t.Fatalf("batched=%v: %d/%d tasks completed", batched, done, w.Tasks)
	}
	rec.Close()
	return buf.Bytes(), k
}

// TestBatchedIPIRecordIdentity asserts the batched cross-CPU message path is
// behaviourally invisible to modules: the record log of a run with per-wake
// kicks and the log of the same run with per-target coalesced kicks must be
// byte-identical. Batching may drop and merge reschedule IPIs (that is its
// point — Linux's TIF_NEED_RESCHED dedup does the same) but must never
// reorder, drop, or retime a message crossing into the module.
func TestBatchedIPIRecordIdentity(t *testing.T) {
	unbatched, _ := recordedRun(t, false)
	batched, bk := recordedRun(t, true)

	if bk.IPIsCoalesced == 0 {
		t.Error("batched run coalesced no IPIs — the workload exercises nothing")
	}
	if !bytes.Equal(unbatched, batched) {
		i := 0
		for i < len(unbatched) && i < len(batched) && unbatched[i] == batched[i] {
			i++
		}
		t.Fatalf("record logs diverge: %d vs %d bytes, first difference at byte %d",
			len(unbatched), len(batched), i)
	}
}

// TestCrossingCountersNUMA sanity-checks the kernel's domain-crossing
// accounting on the two-socket machine: a churned workload must migrate
// across LLC domains, and every cross-node move is also a cross-LLC move.
func TestCrossingCountersNUMA(t *testing.T) {
	r := NewRigOn(Case{Name: "cfs"}, kernel.Machine80(), enokic.DefaultConfig(), nil)
	w := Workload{Seed: 9, Tasks: 100, Churn: true}
	if done := w.Run(r); done != w.Tasks {
		t.Fatalf("%d/%d tasks completed", done, w.Tasks)
	}
	if r.K.XLLCMoves == 0 {
		t.Error("churned NUMA workload recorded no cross-LLC moves")
	}
	if r.K.XNodeMoves > r.K.XLLCMoves {
		t.Errorf("XNodeMoves (%d) exceeds XLLCMoves (%d): cross-node moves must be counted as cross-LLC too",
			r.K.XNodeMoves, r.K.XLLCMoves)
	}
}
