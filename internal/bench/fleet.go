// Fleet-scale benchmark: the headline cluster-simulation artifact. One
// thousand simulated machines — each a full sharded kernel stack — run a
// million jobs under the cluster control plane, twice: once with the
// fleet driven serially, once on worker goroutines. The run includes a
// machine failure mid-flight, so the artifact's verdicts cover the whole
// story: jobs complete, placement stays fast, failover loses nothing, and
// the two drives produce identical per-machine simulations (fingerprinted
// per machine and compared, the cheap form of the byte-identical record-log
// gate the tests enforce).
package bench

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"time"

	"enoki/internal/cluster"
	"enoki/internal/kernel"
	"enoki/internal/ktime"
)

// FleetSLO is one pass/fail verdict of the fleet run.
type FleetSLO struct {
	Name     string `json:"name"`
	Target   string `json:"target"`
	Measured string `json:"measured"`
	Pass     bool   `json:"pass"`
}

// FleetResult is the fleet section of BENCH_cluster.json.
type FleetResult struct {
	Machines    int `json:"machines"`
	MachineCPUs int `json:"machine_cpus"`
	Shards      int `json:"shards_per_machine"`
	Jobs        int `json:"jobs"`

	VirtualMS      float64 `json:"virtual_ms"`
	WallSerialMS   float64 `json:"wall_serial_ms"`
	WallParallelMS float64 `json:"wall_parallel_ms"`

	Done         int     `json:"done"`
	Lost         int     `json:"lost"`
	Migrations   int     `json:"migrations"`
	TasksSpawned uint64  `json:"tasks_spawned"`
	EventsFired  uint64  `json:"events_fired"`
	Epochs       uint64  `json:"fleet_epochs"`
	MsgsSent     uint64  `json:"msgs_sent"`
	PlaceP50US   float64 `json:"place_p50_us"`
	PlaceP99US   float64 `json:"place_p99_us"`
	E2EP50US     float64 `json:"e2e_p50_us"`
	E2EP99US     float64 `json:"e2e_p99_us"`

	FingerprintSerial   string     `json:"fingerprint_serial"`
	FingerprintParallel string     `json:"fingerprint_parallel"`
	GOMAXPROCS          int        `json:"gomaxprocs"`
	SLOs                []FleetSLO `json:"slos"`
	Pass                bool       `json:"pass"`
}

// fleetDrive runs one seeded fleet workload to completion and returns the
// cluster stats, the per-machine fingerprint, the final virtual time, and
// the wall-clock cost. killAt is when the sacrificial machine fails; it
// must land while jobs are still in flight for the failover verdict to mean
// anything.
func fleetDrive(machines int, m kernel.Machine, jobs int, killAt time.Duration, parallel bool) (cluster.Stats, uint64, ktime.Time, time.Duration) {
	cl := cluster.New(cluster.Config{
		Machines: machines,
		Machine:  m,
		Parallel: parallel,
		Placer:   cluster.LeastLoaded{},
	})
	defer cl.Close()
	rng := ktime.NewRand(0xf1ee7b47)
	for i := 0; i < jobs; i++ {
		cl.Submit(cluster.JobSpec{
			Cycles: 2 + rng.Intn(3),
			Run:    time.Duration(100+rng.Intn(200)) * time.Microsecond,
			Sleep:  time.Duration(rng.Intn(2)) * 200 * time.Microsecond,
		})
	}
	// One machine dies mid-run; the detector fires and its jobs restart
	// elsewhere from their checkpoints.
	cl.FailMachine(machines/3, killAt)
	start := time.Now()
	cl.RunUntilIdle()
	wall := time.Since(start)

	h := fnv.New64a()
	word := func(v uint64) {
		var b [8]byte
		for i := 0; i < 8; i++ {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	for i := 0; i < cl.NumMachines(); i++ {
		mc := cl.Machine(i)
		sk := mc.Sharded()
		word(mc.TasksSpawned())
		word(sk.CtxSwitches())
		word(sk.EventsFired())
		word(sk.Wakeups())
		word(uint64(sk.Now()))
	}
	for i := 0; i < cl.NumJobs(); i++ {
		j := cl.Job(i)
		word(uint64(j.State))
		word(uint64(int64(j.Machine)))
		word(uint64(j.Restarts)<<32 | uint64(j.Migrations))
		word(uint64(j.DoneAt))
	}
	return cl.Stats(), h.Sum64(), cl.Now(), wall
}

// fleetScale sizes the fleet for a per-machine template: the 8-CPU headline
// is 1,000 machines and one million jobs (the handoff fast path in the
// fleet executor is what makes that tractable — see sim.Fleet.SendHandoff);
// bigger machines trade fleet width for per-machine depth so every variant
// stays tractable.
func fleetScale(m kernel.Machine) (machines, jobs int) {
	switch {
	case m.NumCPUs >= 1000:
		return 12, 6000
	case m.NumCPUs >= 80:
		return 120, 30000
	default:
		return 1000, 1000000
	}
}

// RunFleet runs the fleet benchmark on the given per-machine template,
// serial and parallel, and assembles the verdicts.
func RunFleet(m kernel.Machine) *FleetResult {
	machines, jobs := fleetScale(m)
	serial, fpSerial, virt, wallSerial := fleetDrive(machines, m, jobs, 5*time.Millisecond, false)
	_, fpPar, _, wallPar := fleetDrive(machines, m, jobs, 5*time.Millisecond, true)

	r := &FleetResult{
		Machines: machines, MachineCPUs: m.NumCPUs, Shards: m.NumNodes, Jobs: jobs,
		VirtualMS:      float64(virt) / float64(time.Millisecond),
		WallSerialMS:   float64(wallSerial) / float64(time.Millisecond),
		WallParallelMS: float64(wallPar) / float64(time.Millisecond),
		Done:           serial.Done, Lost: serial.Lost, Migrations: serial.Migrations,
		TasksSpawned: serial.TasksSpawned, EventsFired: serial.EventsFired,
		Epochs: serial.Epochs, MsgsSent: serial.MsgsSent,
		PlaceP50US:          float64(serial.PlaceP50) / float64(time.Microsecond),
		PlaceP99US:          float64(serial.PlaceP99) / float64(time.Microsecond),
		E2EP50US:            float64(serial.E2EP50) / float64(time.Microsecond),
		E2EP99US:            float64(serial.E2EP99) / float64(time.Microsecond),
		FingerprintSerial:   fmt.Sprintf("%016x", fpSerial),
		FingerprintParallel: fmt.Sprintf("%016x", fpPar),
		GOMAXPROCS:          runtime.GOMAXPROCS(0),
	}
	slo := func(name, target, measured string, pass bool) {
		r.SLOs = append(r.SLOs, FleetSLO{Name: name, Target: target, Measured: measured, Pass: pass})
	}
	ratio := float64(serial.Done) / float64(jobs)
	slo("completion", "every job completes despite the machine failure",
		fmt.Sprintf("%d/%d (%.4f)", serial.Done, jobs, ratio), serial.Done == jobs)
	slo("placement_p99", "p99 submit-to-running under 5ms",
		fmt.Sprintf("%.0fµs", r.PlaceP99US), serial.PlaceP99 < 5*time.Millisecond)
	slo("failover", "the killed machine's placements restart elsewhere (lost > 0, none stranded)",
		fmt.Sprintf("%d lost, %d done", serial.Lost, serial.Done),
		serial.Lost > 0 && serial.Done == jobs)
	slo("determinism", "serial and parallel fleet drives fingerprint identically",
		fmt.Sprintf("%016x vs %016x", fpSerial, fpPar), fpSerial == fpPar)
	r.Pass = true
	for _, s := range r.SLOs {
		r.Pass = r.Pass && s.Pass
	}
	return r
}

// WriteFleetJSON runs the cluster sweep and the fleet benchmark and writes
// the combined BENCH_cluster.json document to path.
func WriteFleetJSON(path string, m kernel.Machine) (*ClusterOutput, error) {
	out := RunCluster()
	out.Fleet = RunFleet(m)
	return writeClusterDoc(path, out)
}
