package experiments

import (
	"fmt"
	"time"

	"enoki/internal/kernel"
	"enoki/internal/stats"
	"enoki/internal/workload"
)

// Fig2Point is one (offered load, result) sample for one scheduler.
type Fig2Point struct {
	RateKRPS   float64
	P99        time.Duration
	P50        time.Duration
	BatchCPUs  float64
	Achieved   float64
	RangeShare float64
}

// Fig2Series is one scheduler's curve.
type Fig2Series struct {
	Sched  string
	Points []Fig2Point
}

// Fig2Result reproduces Fig 2: RocksDB dispersive-load tail latency under
// CFS, ghOSt-Shinjuku, and Enoki-Shinjuku — without (2a) and with (2b) a
// co-located batch app, plus the batch app's CPU share (2c).
type Fig2Result struct {
	WithBatch bool
	Series    []Fig2Series
}

// Name implements the experiment naming convention.
func (r *Fig2Result) Name() string {
	if r.WithBatch {
		return "fig2b"
	}
	return "fig2a"
}

func (r *Fig2Result) String() string {
	title := "Fig 2a: RocksDB 99% latency vs load (no batch app)"
	if r.WithBatch {
		title = "Fig 2b/2c: RocksDB 99% latency and batch CPU share vs load"
	}
	header := []string{"Load (k req/s)"}
	for _, s := range r.Series {
		header = append(header, s.Sched+" p99(µs)")
		if r.WithBatch {
			header = append(header, s.Sched+" batch-CPUs")
		}
	}
	t := stats.NewTable(header...)
	for i := range r.Series[0].Points {
		row := []any{fmt.Sprintf("%.0f", r.Series[0].Points[i].RateKRPS)}
		for _, s := range r.Series {
			row = append(row, fmt.Sprintf("%d", s.Points[i].P99/time.Microsecond))
			if r.WithBatch {
				row = append(row, fmt.Sprintf("%.2f", s.Points[i].BatchCPUs))
			}
		}
		t.Row(row...)
	}
	return title + "\n" + t.String()
}

// fig2Kinds are the three schedulers compared in Fig 2.
var fig2Kinds = []Kind{KindCFS, KindGhostShinjuku, KindShinjuku}

// Fig2 sweeps the offered load. withBatch co-locates the CFS batch app.
func Fig2(o Options, withBatch bool) *Fig2Result {
	rates := []float64{20000, 30000, 40000, 50000, 60000, 65000, 70000, 75000, 80000}
	if o.Quick {
		rates = []float64{20000, 40000, 60000, 70000, 80000}
	}
	duration := scaleDur(o, 2*time.Second, 400*time.Millisecond)
	warmup := scaleDur(o, 500*time.Millisecond, 100*time.Millisecond)

	res := &Fig2Result{WithBatch: withBatch}
	workerCores := []int{3, 4, 5, 6, 7}
	// Each (scheduler, rate) cell is an independent rig: fan out, collect
	// into index-addressed slots.
	points := make([][]Fig2Point, len(fig2Kinds))
	for i := range points {
		points[i] = make([]Fig2Point, len(rates))
	}
	parDo(o, len(fig2Kinds)*len(rates), func(ci int) {
		kind, rate := fig2Kinds[ci/len(rates)], rates[ci%len(rates)]
		{
			r := NewRig(kernel.Machine8(), kind)
			db := workload.NewRocksDB(r.K, workload.RocksDBConfig{
				Policy:      r.Policy,
				Workers:     50,
				WorkerCores: workerCores,
				Rate:        rate,
				Warmup:      warmup,
				Duration:    duration,
			})
			if kind == KindCFS {
				// Paper setup: RocksDB at nice -20, batch at 19.
				for pid := 1; pid <= 50; pid++ {
					if t := r.K.TaskByPID(pid); t != nil {
						r.K.SetNice(t, -20)
					}
				}
			}
			var batch *workload.BatchApp
			var baseline, final time.Duration
			if withBatch {
				// The batch app may use the scheduling core (2) too:
				// under CFS and Enoki "the scheduler is run on the
				// same core as the application" (§5.4), so only
				// ghOSt's agent actually consumes it.
				batch = workload.NewBatchApp(r.K, PolicyCFS, 5, 19, []int{2, 3, 4, 5, 6, 7})
				r.K.Engine().After(warmup, func() { baseline = batch.CPUTime() })
				r.K.Engine().After(warmup+duration, func() { final = batch.CPUTime() })
			}
			dbr := db.Start()
			p := Fig2Point{
				RateKRPS: rate / 1000, P99: dbr.P99, P50: dbr.P50,
				Achieved: dbr.Achieved,
			}
			if withBatch {
				p.BatchCPUs = float64(final-baseline) / float64(duration)
			}
			points[ci/len(rates)][ci%len(rates)] = p
		}
	})
	for i, kind := range fig2Kinds {
		res.Series = append(res.Series, Fig2Series{Sched: fig2Name(kind), Points: points[i]})
	}
	return res
}

func fig2Name(k Kind) string {
	switch k {
	case KindCFS:
		return "CFS"
	case KindGhostShinjuku:
		return "ghOSt-Shinjuku"
	case KindShinjuku:
		return "Enoki-Shinjuku"
	default:
		return k.String()
	}
}
