package traffic

import (
	"time"

	"enoki/internal/overload"
	"enoki/internal/stats"
)

// ClassReport is one request class's merged measurement.
type ClassReport struct {
	Name      string        `json:"name"`
	Weight    float64       `json:"weight"`
	Requests  uint64        `json:"requests"`
	Completed uint64        `json:"completed"`
	LatSum    uint64        `json:"lat_sum_ns"`
	P50       time.Duration `json:"p50_ns"`
	P99       time.Duration `json:"p99_ns"`
	// FlashP50/FlashP99 cover only requests that arrived inside a flash
	// window — the flash-crowd latency SLO.
	FlashP50   time.Duration `json:"flash_p50_ns"`
	FlashP99   time.Duration `json:"flash_p99_ns"`
	FlashCount uint64        `json:"flash_count"`
	// AntagDone counts completions of requests that arrived while an
	// antagonist window was active — the fairness SLO's raw material.
	AntagDone uint64 `json:"antag_done"`
}

// Report is the merged outcome of one scenario drive.
type Report struct {
	Connections uint64        `json:"connections"`
	Requests    uint64        `json:"requests"`
	Classes     []ClassReport `json:"classes"`
	// Admission is the merged controller accounting per admission class;
	// Total sums them.
	Admission []overload.Counters `json:"admission"`
	Total     overload.Counters   `json:"total"`
	// Violations is every conservation violation found across shards
	// (empty on a healthy drive).
	Violations []string `json:"violations,omitempty"`
	// BrownoutEntered reports whether any class degraded; MaxRecovery is
	// the slowest completed enter→exit episode across shards and
	// classes, and Recovered whether every entered episode completed.
	BrownoutEntered bool          `json:"brownout_entered"`
	Recovered       bool          `json:"recovered"`
	MaxRecovery     time.Duration `json:"max_recovery_ns"`
}

// Collect merges the drivers of one drive (one per shard) into a Report
// and runs the conservation check, requiring every admitted request to
// have completed (the rig must be drained first).
func Collect(ds ...*Driver) Report {
	if len(ds) == 0 {
		return Report{}
	}
	sc := &ds[0].sc
	rep := Report{
		Classes:   make([]ClassReport, len(sc.Classes)),
		Admission: make([]overload.Counters, ds[0].ctl.NumClasses()),
		Recovered: true,
	}
	allH := make([]stats.LogHist, len(sc.Classes))
	flashH := make([]stats.LogHist, len(sc.Classes))
	for _, d := range ds {
		rep.Connections += d.conns
		for ci := range sc.Classes {
			cs := &d.cs[ci]
			cr := &rep.Classes[ci]
			cr.Requests += cs.requests
			cr.Completed += cs.completed
			cr.LatSum += cs.latSum
			cr.AntagDone += cs.antagDone
			allH[ci].Merge(&cs.all)
			flashH[ci].Merge(&cs.flash)
		}
		for ac := 0; ac < d.ctl.NumClasses(); ac++ {
			rep.Admission[ac] = rep.Admission[ac].Add(d.ctl.Counters(ac))
			if d.ctl.Counters(ac).BrownoutEnters > 0 {
				rep.BrownoutEntered = true
				if rec, ok := d.ctl.Recovery(ac); !ok || d.ctl.Degraded(ac) {
					rep.Recovered = false
				} else if rec > rep.MaxRecovery {
					rep.MaxRecovery = rec
				}
			}
		}
		rep.Violations = append(rep.Violations, d.ctl.CheckConservation(true)...)
	}
	for ci := range sc.Classes {
		cr := &rep.Classes[ci]
		cr.Name = sc.Classes[ci].Name
		cr.Weight = sc.Classes[ci].Weight
		cr.P50 = time.Duration(allH[ci].Quantile(0.50))
		cr.P99 = time.Duration(allH[ci].Quantile(0.99))
		cr.FlashP50 = time.Duration(flashH[ci].Quantile(0.50))
		cr.FlashP99 = time.Duration(flashH[ci].Quantile(0.99))
		cr.FlashCount = flashH[ci].Count()
		rep.Requests += cr.Requests
	}
	for _, n := range rep.Admission {
		rep.Total = rep.Total.Add(n)
	}
	return rep
}

// Fairness computes the Jain index over the victim classes' weighted
// completions inside antagonist windows: (Σx)²/(n·Σx²) with
// x_i = AntagDone_i / Weight_i, excluding the antagonist class itself.
// 1.0 is perfectly fair; it degrades toward 1/n as the antagonist
// starves some victims. Returns 1 when fewer than two victims measured.
func (r Report) Fairness(antagonist int) float64 {
	var sum, sumSq float64
	n := 0
	for ci := range r.Classes {
		if ci == antagonist || r.Classes[ci].Weight <= 0 {
			continue
		}
		x := float64(r.Classes[ci].AntagDone) / r.Classes[ci].Weight
		sum += x
		sumSq += x * x
		n++
	}
	if n < 2 || sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(n) * sumSq)
}

// ShedRate is shed unique requests over unique offers (retries of one
// request collapse into its first offer).
func (r Report) ShedRate() float64 {
	unique := r.Total.Offered - r.Total.Retried
	if unique == 0 {
		return 0
	}
	// A unique request was shed iff its final attempt dropped; admitted
	// requests are unique by definition (an admitted retry stops
	// retrying).
	return float64(r.Total.Dropped) / float64(unique)
}

// Fingerprint folds every deterministic counter of the report into one
// FNV-64a word: equal fingerprints mean serial and parallel drives (or
// two machines) measured identical traffic.
func (r Report) Fingerprint() uint64 {
	h := uint64(1469598103934665603)
	word := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= 1099511628211
			v >>= 8
		}
	}
	word(r.Connections)
	word(r.Requests)
	for _, c := range r.Classes {
		word(c.Requests)
		word(c.Completed)
		word(c.LatSum)
		word(c.AntagDone)
		word(c.FlashCount)
	}
	for _, n := range r.Admission {
		word(n.Offered)
		word(n.Admitted)
		word(n.Shed)
		word(n.Retried)
		word(n.Dropped)
		word(n.BrownoutEnters)
		word(n.BrownoutExits)
	}
	word(uint64(len(r.Violations)))
	return h
}
