package main

import (
	"strings"
	"testing"
)

// TestValidateFlags pins the CLI contract: artifact modes are mutually
// exclusive and reject experiment-runner flags, -machine/-shards belong to
// -fleet, -rollout, and -overload, and shard counts can never exceed the
// machine's NUMA nodes.
func TestValidateFlags(t *testing.T) {
	ok := func(f benchFlags) benchFlags {
		if f.Parallel == 0 {
			f.Parallel = 1
		}
		if f.MachineCPUs == 0 {
			f.MachineCPUs = 8
		}
		return f
	}
	cases := []struct {
		name    string
		f       benchFlags
		wantErr string // empty = valid
	}{
		{"defaults", ok(benchFlags{}), ""},
		{"experiments with parallel", ok(benchFlags{Parallel: 4, Args: []string{"upgrade"}}), ""},
		{"benchjson", ok(benchFlags{BenchJSON: true, Args: []string{"out.json"}}), ""},
		{"cluster", ok(benchFlags{Cluster: true}), ""},
		{"fleet", ok(benchFlags{Fleet: true}), ""},
		{"fleet 80-cpu machines", ok(benchFlags{Fleet: true, MachineCPUs: 80, MachineSet: true}), ""},
		{"fleet matching shards", ok(benchFlags{Fleet: true, MachineCPUs: 1000, MachineSet: true, Shards: 10, ShardsSet: true}), ""},
		{"rollout", ok(benchFlags{Rollout: true}), ""},
		{"rollout 80-cpu machines", ok(benchFlags{Rollout: true, MachineCPUs: 80, MachineSet: true}), ""},
		{"overload", ok(benchFlags{Overload: true}), ""},
		{"overload 80-cpu machines", ok(benchFlags{Overload: true, MachineCPUs: 80, MachineSet: true}), ""},
		{"overload matching shards", ok(benchFlags{Overload: true, MachineCPUs: 80, MachineSet: true, Shards: 2, ShardsSet: true}), ""},
		{"overload output file", ok(benchFlags{Overload: true, Args: []string{"out.json"}}), ""},

		{"cluster+fleet", ok(benchFlags{Cluster: true, Fleet: true}), "mutually exclusive"},
		{"overload+fleet", ok(benchFlags{Overload: true, Fleet: true}), "mutually exclusive"},
		{"overload+rollout", ok(benchFlags{Overload: true, Rollout: true}), "mutually exclusive"},
		{"overload+benchjson", ok(benchFlags{Overload: true, BenchJSON: true}), "mutually exclusive"},
		{"overload with quick", ok(benchFlags{Overload: true, Quick: true}), "-quick applies to experiment runs"},
		{"overload with parallel", ok(benchFlags{Overload: true, Parallel: 4}), "-parallel applies to experiment runs"},
		{"overload with list", ok(benchFlags{Overload: true, List: true}), "-list does not compose"},
		{"overload two args", ok(benchFlags{Overload: true, Args: []string{"a", "b"}}), "at most one argument"},
		{"overload bogus machine", ok(benchFlags{Overload: true, MachineCPUs: 64, MachineSet: true}), "-machine must be 8, 80, or 1000"},
		{"overload shards exceed nodes", ok(benchFlags{Overload: true, MachineCPUs: 80, MachineSet: true, Shards: 4, ShardsSet: true}), "exceeds"},
		{"overload shards mismatch nodes", ok(benchFlags{Overload: true, MachineCPUs: 1000, MachineSet: true, Shards: 2, ShardsSet: true}), "does not match"},
		{"fleet+rollout", ok(benchFlags{Fleet: true, Rollout: true}), "mutually exclusive"},
		{"rollout with quick", ok(benchFlags{Rollout: true, Quick: true}), "-quick applies to experiment runs"},
		{"benchjson+cluster", ok(benchFlags{BenchJSON: true, Cluster: true}), "mutually exclusive"},
		{"cluster with parallel", ok(benchFlags{Cluster: true, Parallel: 4}), "-parallel applies to experiment runs"},
		{"fleet with quick", ok(benchFlags{Fleet: true, Quick: true}), "-quick applies to experiment runs"},
		{"cluster with list", ok(benchFlags{Cluster: true, List: true}), "-list does not compose"},
		{"fleet two args", ok(benchFlags{Fleet: true, Args: []string{"a", "b"}}), "at most one argument"},
		{"machine outside fleet", ok(benchFlags{MachineCPUs: 80, MachineSet: true}), "parameterize -fleet, -rollout, and -overload only"},
		{"shards outside fleet", ok(benchFlags{Shards: 2, ShardsSet: true}), "parameterize -fleet, -rollout, and -overload only"},
		{"bogus machine", ok(benchFlags{Fleet: true, MachineCPUs: 64, MachineSet: true}), "-machine must be 8, 80, or 1000"},
		{"shards exceed nodes", ok(benchFlags{Fleet: true, MachineCPUs: 80, MachineSet: true, Shards: 4, ShardsSet: true}), "exceeds"},
		{"shards mismatch nodes", ok(benchFlags{Fleet: true, MachineCPUs: 1000, MachineSet: true, Shards: 2, ShardsSet: true}), "does not match"},
		{"negative shards", ok(benchFlags{Fleet: true, Shards: -1, ShardsSet: true}), "non-negative"},
		{"zero parallel", benchFlags{Parallel: 0, MachineCPUs: 8}, "-parallel must be at least 1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validate(tc.f)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("validate(%+v) = %v, want nil", tc.f, err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("validate(%+v) = %v, want error containing %q", tc.f, err, tc.wantErr)
			}
		})
	}
}
