package ringbuf

import (
	"testing"
	"testing/quick"

	"enoki/internal/ktime"
)

func TestPushPopFIFO(t *testing.T) {
	b := New[int](4)
	for i := 1; i <= 4; i++ {
		if !b.Push(i) {
			t.Fatalf("Push %d failed", i)
		}
	}
	for i := 1; i <= 4; i++ {
		v, ok := b.Pop()
		if !ok || v != i {
			t.Fatalf("Pop: got (%d,%v), want (%d,true)", v, ok, i)
		}
	}
	if _, ok := b.Pop(); ok {
		t.Fatal("Pop on empty succeeded")
	}
}

func TestOverflowDropsAndCounts(t *testing.T) {
	b := New[int](2)
	b.Push(1)
	b.Push(2)
	if b.Push(3) {
		t.Fatal("Push into full ring succeeded")
	}
	if b.Dropped() != 1 {
		t.Fatalf("Dropped = %d", b.Dropped())
	}
	if v, _ := b.Pop(); v != 1 {
		t.Fatalf("overflow corrupted head: %d", v)
	}
}

func TestWraparound(t *testing.T) {
	b := New[int](3)
	for cycle := 0; cycle < 10; cycle++ {
		for i := 0; i < 3; i++ {
			if !b.Push(cycle*10 + i) {
				t.Fatal("Push failed mid-cycle")
			}
		}
		for i := 0; i < 3; i++ {
			v, ok := b.Pop()
			if !ok || v != cycle*10+i {
				t.Fatalf("cycle %d: got %d", cycle, v)
			}
		}
	}
}

func TestDrain(t *testing.T) {
	b := New[string](8)
	if b.Drain() != nil {
		t.Fatal("Drain of empty ring not nil")
	}
	b.Push("a")
	b.Push("b")
	got := b.Drain()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Drain = %v", got)
	}
	if b.Len() != 0 {
		t.Fatal("ring not empty after Drain")
	}
}

func TestMinimumCapacity(t *testing.T) {
	b := New[int](0)
	if b.Cap() != 1 {
		t.Fatalf("Cap = %d", b.Cap())
	}
	b.Push(7)
	if v, _ := b.Pop(); v != 7 {
		t.Fatal("single-slot ring broken")
	}
}

func TestLenCap(t *testing.T) {
	b := New[int](5)
	b.Push(1)
	b.Push(2)
	if b.Len() != 2 || b.Cap() != 5 {
		t.Fatalf("Len=%d Cap=%d", b.Len(), b.Cap())
	}
}

// Property: against a slice model, an arbitrary push/pop interleaving always
// yields identical contents and drop counts.
func TestQuickModelEquivalence(t *testing.T) {
	f := func(seed uint64, capRaw uint8) bool {
		capacity := int(capRaw%16) + 1
		r := ktime.NewRand(seed)
		b := New[uint64](capacity)
		var model []uint64
		var drops uint64
		for op := 0; op < 500; op++ {
			if r.Bernoulli(0.55) {
				v := r.Uint64()
				pushed := b.Push(v)
				if len(model) < capacity {
					if !pushed {
						return false
					}
					model = append(model, v)
				} else {
					if pushed {
						return false
					}
					drops++
				}
			} else {
				v, ok := b.Pop()
				if len(model) == 0 {
					if ok {
						return false
					}
				} else {
					if !ok || v != model[0] {
						return false
					}
					model = model[1:]
				}
			}
			if b.Len() != len(model) || b.Dropped() != drops {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
