package enokic

import (
	"testing"
	"time"

	"enoki/internal/core"
	"enoki/internal/kernel"
	"enoki/internal/sched/wfq"
	"enoki/internal/schedtest"
)

// faultyFactory builds a new-version module whose reregister_init panics —
// the transfer-time fault the transactional upgrade path must roll back.
func faultyFactory(env core.Env) core.Scheduler {
	return &schedtest.Injector{Scheduler: wfq.New(env, policyEnoki), PanicInInit: true}
}

func TestUpgradeRollbackOnInitPanic(t *testing.T) {
	k, a := newRig(t, wfqFactory)
	done := 0
	for i := 0; i < 8; i++ {
		k.Spawn("w", policyEnoki, spin(20*time.Millisecond, 500*time.Microsecond),
			kernel.WithExitObserver(func() { done++ }))
	}
	k.RunFor(5 * time.Millisecond)
	oldSched := a.Scheduler()
	var report UpgradeReport
	resolved := false
	k.Engine().After(0, func() {
		a.Upgrade(faultyFactory, func(r UpgradeReport) { report = r; resolved = true })
	})
	k.RunFor(200 * time.Millisecond)

	if !resolved {
		t.Fatal("upgrade never resolved")
	}
	if !report.RolledBack {
		t.Fatalf("faulty upgrade did not roll back: %+v", report)
	}
	if report.Err != nil {
		t.Fatalf("rollback is not an error outcome, got %v", report.Err)
	}
	if report.Fault == nil || report.Fault.Cause != core.FaultPanic {
		t.Fatalf("rollback lost the contained fault: %+v", report.Fault)
	}
	if a.Scheduler() != oldSched {
		t.Fatal("dispatch pointer is not the restored old module")
	}
	if a.Killed() {
		t.Fatalf("module killed despite rollback: %+v", a.Failure())
	}
	if done != 8 {
		t.Fatalf("tasks lost across rolled-back upgrade: %d/8 completed", done)
	}
	if st := a.Stats(); st.PntErrs != 0 {
		t.Fatalf("stale picks after rollback: %+v", st)
	}
}

func TestUpgradeRollbackOnFactoryPanic(t *testing.T) {
	k, a := newRig(t, wfqFactory)
	done := 0
	for i := 0; i < 4; i++ {
		k.Spawn("w", policyEnoki, spin(10*time.Millisecond, 500*time.Microsecond),
			kernel.WithExitObserver(func() { done++ }))
	}
	var report UpgradeReport
	k.Engine().After(time.Millisecond, func() {
		a.Upgrade(func(core.Env) core.Scheduler { panic("broken build") },
			func(r UpgradeReport) { report = r })
	})
	k.RunFor(100 * time.Millisecond)

	if !report.RolledBack || report.Err != nil {
		t.Fatalf("factory panic must roll back: %+v", report)
	}
	if a.Killed() || done != 4 {
		t.Fatalf("killed=%v done=%d/4 after rolled-back factory panic", a.Killed(), done)
	}
}

// TestUpgradeRollbackDisabledKills pins the pre-transactional behavior the
// chaos campaign's seeded-bug mode exercises: with UpgradeRollback off, a
// transfer-time panic kills the module instead of restoring it.
func TestUpgradeRollbackDisabledKills(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UpgradeRollback = false
	k, a := faultRig(cfg, wfqFactory)
	done := 0
	for i := 0; i < 4; i++ {
		k.Spawn("w", policyEnoki, spin(10*time.Millisecond, 500*time.Microsecond),
			kernel.WithExitObserver(func() { done++ }))
	}
	var report UpgradeReport
	k.Engine().After(time.Millisecond, func() {
		a.Upgrade(faultyFactory, func(r UpgradeReport) { report = r })
	})
	k.RunFor(100 * time.Millisecond)

	if report.Err != ErrModuleKilled {
		t.Fatalf("report.Err = %v, want ErrModuleKilled", report.Err)
	}
	if report.RolledBack {
		t.Fatal("RolledBack set with rollback disabled")
	}
	if !a.Killed() {
		t.Fatal("module not killed with rollback disabled")
	}
	if done != 4 {
		t.Fatalf("tasks lost in kill fallback: %d/4 completed under CFS", done)
	}
}

// badPrepare makes the OLD module's snapshot export panic: there is nothing
// healthy to restore, so even the transactional path must escalate to a kill.
type badPrepare struct{ core.Scheduler }

func (b badPrepare) ReregisterPrepare() *core.TransferOut { panic("prepare corrupt") }

func TestUpgradePrepareFaultIsFatal(t *testing.T) {
	k, a := newRig(t, func(env core.Env) core.Scheduler {
		return badPrepare{wfq.New(env, policyEnoki)}
	})
	done := 0
	for i := 0; i < 4; i++ {
		k.Spawn("w", policyEnoki, spin(10*time.Millisecond, 500*time.Microsecond),
			kernel.WithExitObserver(func() { done++ }))
	}
	var report UpgradeReport
	k.Engine().After(time.Millisecond, func() {
		a.Upgrade(wfqFactory, func(r UpgradeReport) { report = r })
	})
	k.RunFor(100 * time.Millisecond)

	if report.Err != ErrModuleKilled || report.RolledBack {
		t.Fatalf("prepare fault must be fatal, got %+v", report)
	}
	if !a.Killed() {
		t.Fatal("module with a broken prepare was not killed")
	}
	if done != 4 {
		t.Fatalf("tasks lost: %d/4 completed under CFS", done)
	}
}

// TestQueuedUpgradesFailOnKill pins the queued-upgrade death path: when the
// module dies with upgrades waiting behind the in-flight one, every queued
// done callback fires exactly once with ErrModuleKilled — no upgrade
// resolves silently.
func TestQueuedUpgradesFailOnKill(t *testing.T) {
	k, a := newRig(t, func(env core.Env) core.Scheduler {
		return badPrepare{wfq.New(env, policyEnoki)}
	})
	for i := 0; i < 4; i++ {
		k.Spawn("w", policyEnoki, spin(10*time.Millisecond, 500*time.Microsecond))
	}
	var errs []error
	k.Engine().After(time.Millisecond, func() {
		// First upgrade starts the blackout and will die in prepare; the
		// other two queue behind it and must be failed by the kill.
		a.Upgrade(wfqFactory, func(r UpgradeReport) { errs = append(errs, r.Err) })
		a.Upgrade(wfqFactory, func(r UpgradeReport) { errs = append(errs, r.Err) })
		a.Upgrade(wfqFactory, func(r UpgradeReport) { errs = append(errs, r.Err) })
	})
	k.RunFor(100 * time.Millisecond)

	if len(errs) != 3 {
		t.Fatalf("%d of 3 upgrade callbacks fired", len(errs))
	}
	for i, err := range errs {
		if err != ErrModuleKilled {
			t.Fatalf("upgrade %d resolved with %v, want ErrModuleKilled", i, err)
		}
	}
	// A post-kill request is refused synchronously, not queued.
	if err := a.Upgrade(wfqFactory, nil); err != ErrModuleKilled {
		t.Fatalf("Upgrade after kill = %v, want ErrModuleKilled", err)
	}
}

// TestRollbackUnderRepeatedTransferPanics hammers the transaction: five
// consecutive faulty upgrades against a loaded module, each rolled back,
// zero tasks lost, module still the original version and still alive.
func TestRollbackUnderRepeatedTransferPanics(t *testing.T) {
	k, a := newRig(t, wfqFactory)
	done := 0
	for i := 0; i < 12; i++ {
		k.Spawn("w", policyEnoki, spin(30*time.Millisecond, 500*time.Microsecond),
			kernel.WithExitObserver(func() { done++ }))
		k.Spawn("s", policyEnoki, sleeper(20, 100*time.Microsecond, 200*time.Microsecond),
			kernel.WithExitObserver(func() { done++ }))
	}
	oldSched := a.Scheduler()
	rollbacks := 0
	for i := 0; i < 5; i++ {
		k.Engine().After(time.Duration(i+1)*2*time.Millisecond, func() {
			a.Upgrade(faultyFactory, func(r UpgradeReport) {
				if r.RolledBack {
					rollbacks++
				}
			})
		})
	}
	k.RunFor(300 * time.Millisecond)

	if rollbacks != 5 {
		t.Fatalf("%d/5 faulty upgrades rolled back", rollbacks)
	}
	if a.Killed() {
		t.Fatalf("module killed: %+v", a.Failure())
	}
	if a.Scheduler() != oldSched {
		t.Fatal("module pointer drifted across rollbacks")
	}
	if done != 24 {
		t.Fatalf("tasks lost: %d/24 completed", done)
	}
	if k.NumTasks() != 0 {
		t.Fatalf("leaked tasks: %d", k.NumTasks())
	}
}
