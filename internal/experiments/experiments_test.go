package experiments

import (
	"strings"
	"testing"
	"time"
)

// These tests assert the qualitative shape of every reproduced table and
// figure — who wins, by roughly what factor, where crossovers fall — in
// quick mode. EXPERIMENTS.md records the full-scale numbers.

func us(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

func TestTable3Shape(t *testing.T) {
	r := Table3(Options{Quick: true})
	t.Log("\n" + r.String())
	rows := map[string]Table3Row{}
	for _, row := range r.Rows {
		rows[row.Sched] = row
	}
	cfs, wfq := rows["CFS"], rows["WFQ"]
	// CFS baseline calibrated to the paper's 3.0/3.6 µs.
	if us(cfs.OneCore) < 2.2 || us(cfs.OneCore) > 3.8 {
		t.Errorf("CFS one-core = %v, want ~3µs", cfs.OneCore)
	}
	if us(cfs.TwoCore) < 2.8 || us(cfs.TwoCore) > 4.4 {
		t.Errorf("CFS two-core = %v, want ~3.6µs", cfs.TwoCore)
	}
	// Enoki overhead: 0.3-1.0 µs per wakeup over CFS (paper 0.4-0.6).
	over := wfq.OneCore - cfs.OneCore
	if over < 200*time.Nanosecond || over > time.Microsecond {
		t.Errorf("WFQ overhead = %v, want 0.4-0.6µs band", over)
	}
	// Shinjuku pays the per-operation timer on top of WFQ.
	if rows["Shinjuku"].OneCore <= wfq.OneCore {
		t.Error("Shinjuku should be slower than WFQ (timer per op)")
	}
	// Locality is the simplest module: not slower than WFQ.
	if rows["Locality"].OneCore > wfq.OneCore {
		t.Error("Locality should not be slower than WFQ")
	}
	// ghOSt is well above every Enoki scheduler; per-CPU FIFO worst on
	// one core (agent shares the core).
	if rows["GhOSt SOL"].OneCore < wfq.OneCore+2*time.Microsecond {
		t.Error("ghOSt SOL should pay a multi-µs agent round trip")
	}
	if rows["GhOSt FIFO"].OneCore <= rows["GhOSt SOL"].OneCore {
		t.Error("per-CPU FIFO should be worst on one core")
	}
	// Arachne is user-level: an order of magnitude below everything.
	if rows["Arachne"].OneCore > 500*time.Nanosecond {
		t.Errorf("Arachne = %v, want ~0.1µs", rows["Arachne"].OneCore)
	}
}

func TestTable4Shape(t *testing.T) {
	r := Table4(Options{Quick: true})
	t.Log("\n" + r.String())
	get := func(cells []Table4Cell, name string) Table4Cell {
		for _, c := range cells {
			if c.Sched == name {
				return c
			}
		}
		t.Fatalf("missing %s", name)
		return Table4Cell{}
	}
	cfs2 := get(r.TwoWorkers, "CFS")
	wfq2 := get(r.TwoWorkers, "WFQ")
	// Cold-core wakeups dominate: ~74µs p50 / ~101µs p99 for CFS.
	if us(cfs2.P50) < 40 || us(cfs2.P50) > 120 {
		t.Errorf("CFS 2-task p50 = %v, want ~74µs", cfs2.P50)
	}
	if cfs2.P99 <= cfs2.P50 {
		t.Error("CFS p99 should exceed p50")
	}
	// Enoki WFQ tracks CFS within ~25%.
	ratio := float64(wfq2.P50) / float64(cfs2.P50)
	if ratio < 0.75 || ratio > 1.35 {
		t.Errorf("WFQ/CFS p50 ratio = %.2f, want ~1", ratio)
	}
	// Arachne stays user-level: far below CFS at the median.
	ar40 := get(r.FortyWorkers, "Arachne")
	cfs40 := get(r.FortyWorkers, "CFS")
	if ar40.P50 > cfs40.P50/2 {
		t.Errorf("Arachne 40-task p50 = %v vs CFS %v; should be well below", ar40.P50, cfs40.P50)
	}
}

func TestTable5Shape(t *testing.T) {
	r := Table5(Options{Quick: true})
	t.Logf("table5: geomean=%.2f%% max=%.2f%%", r.Geomean, r.MaxAbs)
	if len(r.Rows) != 36 {
		t.Fatalf("expected 36 benchmarks, got %d", len(r.Rows))
	}
	// Paper: geomean 0.74%, max 8.57%. Band: geomean under ~2%, max under ~12%.
	if r.Geomean > 2.0 {
		t.Errorf("geomean |diff| = %.2f%%, want ≲1%%", r.Geomean)
	}
	if r.MaxAbs > 12 {
		t.Errorf("max |diff| = %.2f%%, want single digits", r.MaxAbs)
	}
	// Both signs must occur (WFQ wins some benchmarks in the paper too).
	pos, neg := false, false
	for _, row := range r.Rows {
		if row.DiffPct > 0.05 {
			pos = true
		}
		if row.DiffPct < -0.05 {
			neg = true
		}
	}
	if !pos || !neg {
		t.Error("diffs should scatter around zero")
	}
}

func TestTable6Shape(t *testing.T) {
	r := Table6(Options{Quick: true})
	t.Log("\n" + r.String())
	byName := map[string]Table6Row{}
	for _, row := range r.Rows {
		byName[row.Config] = row
	}
	cfs, random, hints := byName["CFS"], byName["Random"], byName["Hints"]
	// Hints co-locate: an order of magnitude below CFS (paper 2µs vs 33µs).
	if hints.P50*4 > cfs.P50 {
		t.Errorf("hints p50 %v should be ≪ CFS %v", hints.P50, cfs.P50)
	}
	if us(hints.P50) > 10 {
		t.Errorf("hints p50 = %v, want single-digit µs", hints.P50)
	}
	// Random placement behaves like CFS.
	ratio := float64(random.P50) / float64(cfs.P50)
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("random/CFS p50 ratio = %.2f, want ~1", ratio)
	}
}

func TestFig2Shape(t *testing.T) {
	r := Fig2(Options{Quick: true}, false)
	t.Log("\n" + r.String())
	series := map[string]Fig2Series{}
	for _, s := range r.Series {
		series[s.Sched] = s
	}
	cfs := series["CFS"].Points
	enoki := series["Enoki-Shinjuku"].Points
	ghost := series["ghOSt-Shinjuku"].Points
	// Mid-load: CFS tail is far above both Shinjuku variants.
	mid := len(cfs) / 2
	if cfs[mid].P99 < 4*enoki[mid].P99 {
		t.Errorf("at %vk req/s CFS p99 %v should dwarf Enoki-Shinjuku %v",
			cfs[mid].RateKRPS, cfs[mid].P99, enoki[mid].P99)
	}
	// Enoki-Shinjuku keeps sub-200µs tails until near saturation.
	if us(enoki[mid].P99) > 200 {
		t.Errorf("Enoki-Shinjuku mid-load p99 = %v", enoki[mid].P99)
	}
	// At high load ghOSt is worse than Enoki (the >65k claim).
	hi := len(cfs) - 2
	if ghost[hi].P99 < enoki[hi].P99 {
		t.Errorf("at %vk: ghOSt %v should exceed Enoki %v",
			ghost[hi].RateKRPS, ghost[hi].P99, enoki[hi].P99)
	}
}

func TestFig2cShape(t *testing.T) {
	r := Fig2(Options{Quick: true}, true)
	t.Log("\n" + r.String())
	series := map[string]Fig2Series{}
	for _, s := range r.Series {
		series[s.Sched] = s
	}
	for i := range series["CFS"].Points {
		cfs := series["CFS"].Points[i]
		enoki := series["Enoki-Shinjuku"].Points[i]
		ghost := series["ghOSt-Shinjuku"].Points[i]
		// Batch share declines with load and ghOSt gives the least
		// (userspace scheduler tax, Fig 2c).
		if ghost.BatchCPUs >= cfs.BatchCPUs {
			t.Errorf("at %vk: ghOSt batch %.2f should be below CFS %.2f",
				cfs.RateKRPS, ghost.BatchCPUs, cfs.BatchCPUs)
		}
		if ghost.BatchCPUs >= enoki.BatchCPUs {
			t.Errorf("at %vk: ghOSt batch %.2f should be below Enoki %.2f",
				cfs.RateKRPS, ghost.BatchCPUs, enoki.BatchCPUs)
		}
	}
}

func TestFig3Shape(t *testing.T) {
	r := Fig3(Options{Quick: true})
	t.Log("\n" + r.String())
	series := map[string]Fig3Series{}
	for _, s := range r.Series {
		series[s.Config] = s
	}
	last := len(series["CFS"].Points) - 1
	cfs := series["CFS"].Points[last]
	native := series["Arachne"].Points[last]
	enoki := series["Enoki-Arachne"].Points[last]
	// High load: both Arachne variants beat CFS (§5.6).
	if native.P99 >= cfs.P99 || enoki.P99 >= cfs.P99 {
		t.Errorf("at %vk: Arachne %v / Enoki %v should beat CFS %v",
			cfs.RateKRPS, native.P99, enoki.P99, cfs.P99)
	}
	// The two Arachne variants perform similarly (within 3x).
	hi, lo := native.P99, enoki.P99
	if hi < lo {
		hi, lo = lo, hi
	}
	if hi > 3*lo {
		t.Errorf("Arachne variants diverge: native %v vs enoki %v", native.P99, enoki.P99)
	}
}

func TestUpgradeShape(t *testing.T) {
	r := Upgrade(Options{Quick: true})
	t.Log("\n" + r.String())
	if len(r.Rows) != 3 {
		t.Fatalf("want 3 rows, got %d", len(r.Rows))
	}
	small, big := r.Rows[0], r.Rows[1]
	// Paper: 1.5µs one socket, ~10µs two sockets.
	if us(small.Blackout) < 0.8 || us(small.Blackout) > 3 {
		t.Errorf("8-core blackout = %v, want ~1.5µs", small.Blackout)
	}
	if us(big.Blackout) < 6 || us(big.Blackout) > 15 {
		t.Errorf("80-core blackout = %v, want ~10µs", big.Blackout)
	}
	if big.Blackout <= small.Blackout {
		t.Error("blackout should grow with core count")
	}
}

func TestRecordReplayShape(t *testing.T) {
	r := RecordReplay(Options{Quick: true})
	t.Log("\n" + r.String())
	// Paper: ~7.5x record slowdown; replay slower still, dominated by
	// lock-order blocking.
	if r.RecordRatio < 2 || r.RecordRatio > 20 {
		t.Errorf("record slowdown = %.1fx, want several-fold", r.RecordRatio)
	}
	if r.Divergences != 0 {
		t.Errorf("faithful replay diverged %d times", r.Divergences)
	}
	if r.ReplayedMsgs == 0 || r.LogEntries == 0 {
		t.Error("empty record/replay")
	}
}

func TestEquivalenceShape(t *testing.T) {
	r := Equivalence(Options{Quick: true})
	t.Log("\n" + r.String())
	if bad := r.CheckEquivalence(); len(bad) != 0 {
		t.Errorf("equivalence violations: %v", bad)
	}
	// The moved-task probe shows more variation than the still probe
	// (the appendix's CFS 0.001s→0.018s observation, scaled down).
	if r.PlaceMovedWFQ <= r.PlaceStillWFQ {
		t.Error("moving a task should increase completion spread")
	}
}

func TestTable2Counts(t *testing.T) {
	r := Table2(Options{})
	t.Log("\n" + r.String())
	if r.Total < 5000 {
		t.Errorf("LoC count implausibly small: %d", r.Total)
	}
	for _, row := range r.Rows {
		if row.LOC == 0 && !strings.Contains(row.Component, "record") &&
			!strings.Contains(row.Component, "replay") {
			t.Errorf("component %q counted no code", row.Component)
		}
	}
}

func TestExtNestShape(t *testing.T) {
	r := ExtNest(Options{Quick: true})
	t.Log("\n" + r.String())
	if r.NestCores >= r.CFSCores {
		t.Errorf("nest used %d cores vs CFS %d; consolidation missing", r.NestCores, r.CFSCores)
	}
	if r.NestP50 > 3*r.CFSP50 {
		t.Errorf("nest p50 %v too far above CFS %v", r.NestP50, r.CFSP50)
	}
}

func TestNUMAShape(t *testing.T) {
	r := NUMA(Options{Quick: true})
	t.Log("\n" + r.String())
	if len(r.Cells) != 3 {
		t.Fatalf("got %d cells, want 3", len(r.Cells))
	}
	flat, numa, unbatched := r.Cells[0], r.Cells[1], r.Cells[2]
	// The tentpole claim: topology-aware balancing slashes cross-socket
	// migrations under the same workload.
	if numa.XNodeMoves*10 >= flat.XNodeMoves {
		t.Errorf("NUMA-sharded made %d cross-socket moves vs flat's %d; want <10%%",
			numa.XNodeMoves, flat.XNodeMoves)
	}
	if numa.P99 >= flat.P99 {
		t.Errorf("NUMA-sharded p99 %v not below flat %v", numa.P99, flat.P99)
	}
	// Batching is behaviour-neutral (same decisions, same latency)…
	if numa.P50 != unbatched.P50 || numa.P99 != unbatched.P99 ||
		numa.XNodeMoves != unbatched.XNodeMoves {
		t.Errorf("batched/unbatched runs diverged: %+v vs %+v", numa, unbatched)
	}
	// …but saves real IPIs.
	if numa.IPIsCoalesced == 0 {
		t.Error("batched run coalesced nothing")
	}
	if unbatched.IPIsCoalesced != 0 {
		t.Errorf("unbatched run reports %d coalesced IPIs", unbatched.IPIsCoalesced)
	}
	if numa.IPIsSent+numa.IPIsCoalesced != unbatched.IPIsSent {
		t.Errorf("IPI accounting: batched sent %d + coalesced %d != unbatched sent %d",
			numa.IPIsSent, numa.IPIsCoalesced, unbatched.IPIsSent)
	}
}

func TestRegistry(t *testing.T) {
	if len(All()) != 14 {
		t.Fatalf("registry has %d experiments", len(All()))
	}
	if _, ok := Find("table3"); !ok {
		t.Fatal("Find failed")
	}
	if _, ok := Find("faults"); !ok {
		t.Fatal("Find failed for faults")
	}
	if _, ok := Find("nope"); ok {
		t.Fatal("Find matched nonsense")
	}
}
