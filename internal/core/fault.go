package core

import (
	"fmt"
	"runtime/debug"
)

// FaultCause classifies why the framework declared a scheduler module dead.
// The paper's safety argument (§3.1) stops a buggy module from corrupting
// kernel state; the fault layer extends it to modules that crash or wedge:
// instead of taking the kernel down, the module is terminated and its tasks
// fall back to a native class — the verify-or-terminate model of the eBPF
// runtime, applied at the module boundary.
type FaultCause int

// Module fault causes.
const (
	// FaultNone is the zero value; a live module has no fault.
	FaultNone FaultCause = iota
	// FaultPanic: the module panicked inside a trait function. The panic
	// is caught at the Dispatch crossing, never unwinding into the
	// (simulated) kernel.
	FaultPanic
	// FaultStarvation: a CPU held queued module tasks past the watchdog
	// window without one successful pick_next_task — the module went
	// quiet (returns nil forever, lost its tokens, dropped a wakeup).
	FaultStarvation
	// FaultPickErrors: the module burned through its budget of rejected
	// pick_next_task results (stale, forged, wrong-CPU or consumed
	// Schedulables) without recovering.
	FaultPickErrors
	// FaultQueueLie: the module returned the wrong object (or nothing)
	// when asked to unregister a hint queue it had accepted.
	FaultQueueLie
)

func (c FaultCause) String() string {
	switch c {
	case FaultNone:
		return "none"
	case FaultPanic:
		return "panic"
	case FaultStarvation:
		return "starvation"
	case FaultPickErrors:
		return "pick-errors"
	case FaultQueueLie:
		return "queue-lie"
	default:
		return "unknown"
	}
}

// ModuleFault describes one fatal module failure: what tripped, on which
// message kind and CPU, and (for panics) the recovered value and stack.
type ModuleFault struct {
	Cause FaultCause
	// MsgKind is the trait call in flight when the fault tripped
	// (MsgInvalid when no call was, e.g. a watchdog trip).
	MsgKind Kind
	// CPU is the kernel thread the fault is attributed to (-1 when none).
	CPU int
	// PanicValue and Stack capture the recovered panic for FaultPanic.
	PanicValue any
	Stack      string
}

func (f ModuleFault) String() string {
	switch f.Cause {
	case FaultPanic:
		return fmt.Sprintf("module panic in %v: %v", f.MsgKind, f.PanicValue)
	case FaultStarvation:
		return fmt.Sprintf("module starved cpu %d", f.CPU)
	case FaultPickErrors:
		return "module exhausted pick-error budget"
	case FaultQueueLie:
		return fmt.Sprintf("module lied on %v", f.MsgKind)
	default:
		return f.Cause.String()
	}
}

// TraceSink observes completed framework crossings. SafeDispatchTraced calls
// it exactly once per message, after the module returned (or panicked, with
// faulted=true). Implementations must not retain m — it is pooled and will
// be Reset — and must not allocate if the caller's hot path is pinned to
// zero allocations.
type TraceSink interface {
	TraceCrossing(m *Message, faulted bool)
}

// SafeDispatch runs Dispatch with panic containment: a panic raised by the
// module (or by Dispatch parsing a malformed message) is recovered and
// returned as a ModuleFault instead of unwinding into the kernel's
// scheduling core. The non-panicking path adds only an open-coded defer, so
// the framework crossing stays allocation-free.
func SafeDispatch(s Scheduler, m *Message) *ModuleFault {
	return SafeDispatchTraced(s, m, nil)
}

// SafeCall runs fn with the same panic containment as SafeDispatch, for
// module entry points that are not message dispatches — the upgrade
// protocol's reregister_prepare / factory / reregister_init crossings. A
// panic is returned as a FaultPanic ModuleFault (MsgKind MsgInvalid, CPU -1:
// upgrade crossings run from user context, not a kernel thread) instead of
// unwinding into the kernel.
func SafeCall(fn func()) (fault *ModuleFault) {
	defer func() {
		if r := recover(); r != nil {
			fault = &ModuleFault{
				Cause:      FaultPanic,
				MsgKind:    MsgInvalid,
				CPU:        -1,
				PanicValue: r,
				Stack:      string(debug.Stack()),
			}
		}
	}()
	fn()
	return nil
}

// SafeDispatchTraced is SafeDispatch with an observability tap: when sink is
// non-nil it sees every crossing — including ones that panicked, which a
// sink placed after a plain SafeDispatch call would miss because the fault
// return short-circuits the caller.
func SafeDispatchTraced(s Scheduler, m *Message, sink TraceSink) (fault *ModuleFault) {
	defer func() {
		if r := recover(); r != nil {
			fault = &ModuleFault{
				Cause:      FaultPanic,
				MsgKind:    m.Kind,
				CPU:        m.Thread,
				PanicValue: r,
				Stack:      string(debug.Stack()),
			}
			if sink != nil {
				sink.TraceCrossing(m, true)
			}
		}
	}()
	Dispatch(s, m)
	if sink != nil {
		sink.TraceCrossing(m, false)
	}
	return nil
}
