package experiments

import (
	"fmt"
	"testing"
	"time"

	"enoki/internal/kernel"
	"enoki/internal/workload"
)

func TestFig3Debug(t *testing.T) {
	r := NewRig(kernel.Machine8(), KindCFS)
	mr := workload.RunMemcachedThreads(r.K, r.Policy, 8, workload.MemcachedConfig{
		Rate: 200000, Warmup: 100 * time.Millisecond, Duration: 400 * time.Millisecond,
	})
	fmt.Printf("achieved=%.0f completed=%d p50=%v p99=%v\n", mr.Achieved, mr.Completed, mr.P50, mr.P99)
	for c := 0; c < 8; c++ {
		fmt.Printf("cpu%d busy=%v\n", c, r.K.CPUBusy(c))
	}
	for pid := 1; pid <= 8; pid++ {
		fmt.Println(r.K.TaskByPID(pid))
	}
}
