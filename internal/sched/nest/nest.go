// Package nest is an extension scheduler inspired by Nest (Lawall et al.,
// EuroSys '22), which the paper's §2 cites as motivation: "improves energy
// efficiency for jobs with fewer tasks than cores by reusing warm cores
// rather than spreading tasks across many cold cores".
//
// It is not part of the paper's evaluation; it exists to demonstrate the
// paper's thesis — that new research schedulers are quick to build on the
// framework. The policy: keep a small "nest" of warm cores and place
// wakeups there, expanding the nest only when it is saturated and shrinking
// it when cores go unused. On this substrate the win is directly
// measurable as consolidation: a light load runs on one or two cores and
// leaves the rest in deep C-states (the energy proxy), at latency
// comparable to CFS's spread placement.
package nest

import (
	"time"

	"enoki/internal/core"
)

// Tuning knobs.
const (
	// shrinkAfter is how many consecutive placement decisions that find
	// a nest core completely idle before it is demoted back to cold.
	shrinkAfter = 512
	// expandAt is the per-core occupancy (running + queued) that
	// triggers nest growth; tolerating one waiter is the policy's
	// compactness bias.
	expandAt = 2
)

type task struct {
	pid    int
	sched  *core.Schedulable
	cpu    int
	queued bool
}

type state struct {
	tasks  map[int]*task
	queues [][]*task
	// running tracks the pid current on each core (module view).
	running []int
	// inNest marks the warm set; idleTicks counts demotion pressure.
	inNest    []bool
	idleTicks []int
	nestSize  int
}

// Sched is the Nest-style Enoki scheduler module.
type Sched struct {
	core.BaseScheduler
	env    core.Env
	policy int
	mu     core.Locker
	st     *state

	// Expansions and Shrinks count nest resizing decisions.
	Expansions uint64
	Shrinks    uint64
}

var _ core.Scheduler = (*Sched)(nil)

// New constructs the module with a one-core initial nest.
func New(env core.Env, policy int) *Sched {
	s := &Sched{env: env, policy: policy, mu: env.NewMutex("nest")}
	s.st = &state{
		tasks:     make(map[int]*task),
		queues:    make([][]*task, env.NumCPUs()),
		running:   make([]int, env.NumCPUs()),
		inNest:    make([]bool, env.NumCPUs()),
		idleTicks: make([]int, env.NumCPUs()),
	}
	s.st.inNest[0] = true
	s.st.nestSize = 1
	return s
}

// GetPolicy implements core.Scheduler.
func (s *Sched) GetPolicy() int { return s.policy }

func (s *Sched) push(t *task, cpu int, sched *core.Schedulable) {
	t.cpu = cpu
	t.queued = true
	t.sched = sched
	s.st.queues[cpu] = append(s.st.queues[cpu], t)
}

func (s *Sched) remove(t *task) {
	q := s.st.queues[t.cpu]
	for i, e := range q {
		if e == t {
			s.st.queues[t.cpu] = append(append([]*task{}, q[:i]...), q[i+1:]...)
			break
		}
	}
	t.queued = false
}

// place picks the emptiest nest core; when every nest core is saturated
// (running plus a waiter), the nest expands by promoting a cold core. Each
// placement decision also ages fully idle nest cores; cores that stay idle
// long enough demote back to cold.
func (s *Sched) place() int {
	best, bestLen := -1, 1<<30
	for cpu, in := range s.st.inNest {
		if !in {
			continue
		}
		n := len(s.st.queues[cpu])
		if s.st.running[cpu] != 0 {
			n++
		}
		if n == 0 && s.st.nestSize > 1 {
			s.st.idleTicks[cpu]++
			if s.st.idleTicks[cpu] >= shrinkAfter {
				s.st.inNest[cpu] = false
				s.st.idleTicks[cpu] = 0
				s.st.nestSize--
				s.Shrinks++
				continue
			}
		} else {
			s.st.idleTicks[cpu] = 0
		}
		if n < bestLen {
			best, bestLen = cpu, n
		}
	}
	if best >= 0 && bestLen < expandAt {
		return best
	}
	// Saturated: expand the nest.
	for cpu, in := range s.st.inNest {
		if !in {
			s.st.inNest[cpu] = true
			s.st.idleTicks[cpu] = 0
			s.st.nestSize++
			s.Expansions++
			return cpu
		}
	}
	return best // whole machine is the nest
}

// NestSize reports the current warm-set size (tests/demos).
func (s *Sched) NestSize() int { return s.st.nestSize }

// TaskNew implements core.Scheduler.
func (s *Sched) TaskNew(pid int, runtime time.Duration, runnable bool, allowed []int, sched *core.Schedulable) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := &task{pid: pid}
	s.st.tasks[pid] = t
	if runnable && sched != nil {
		s.push(t, sched.CPU(), sched)
	}
}

// TaskWakeup implements core.Scheduler.
func (s *Sched) TaskWakeup(pid int, runtime time.Duration, deferrable bool, lastCPU, wakeCPU int, sched *core.Schedulable) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t := s.st.tasks[pid]; t != nil {
		s.push(t, wakeCPU, sched)
	}
}

// TaskPreempt implements core.Scheduler.
func (s *Sched) TaskPreempt(pid int, runtime time.Duration, cpu int, preempted bool, sched *core.Schedulable) {
	s.requeue(pid, cpu, sched)
}

// TaskYield implements core.Scheduler.
func (s *Sched) TaskYield(pid int, runtime time.Duration, cpu int, sched *core.Schedulable) {
	s.requeue(pid, cpu, sched)
}

func (s *Sched) requeue(pid, cpu int, sched *core.Schedulable) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.st.running[cpu] == pid {
		s.st.running[cpu] = 0
	}
	if t := s.st.tasks[pid]; t != nil {
		s.push(t, cpu, sched)
	}
}

// TaskBlocked implements core.Scheduler.
func (s *Sched) TaskBlocked(pid int, runtime time.Duration, cpu int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.st.running[cpu] == pid {
		s.st.running[cpu] = 0
	}
	if t := s.st.tasks[pid]; t != nil {
		t.sched = nil
	}
}

// TaskDead implements core.Scheduler.
func (s *Sched) TaskDead(pid int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.clearRunning(pid)
	if t := s.st.tasks[pid]; t != nil {
		if t.queued {
			s.remove(t)
		}
		delete(s.st.tasks, pid)
	}
}

// clearRunning drops a stale running marker for pid.
func (s *Sched) clearRunning(pid int) {
	for c, r := range s.st.running {
		if r == pid {
			s.st.running[c] = 0
		}
	}
}

// TaskDeparted implements core.Scheduler.
func (s *Sched) TaskDeparted(pid, cpu int) *core.Schedulable {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.st.tasks[pid]
	if t == nil {
		return nil
	}
	s.clearRunning(pid)
	if t.queued {
		s.remove(t)
	}
	delete(s.st.tasks, pid)
	tok := t.sched
	t.sched = nil
	return tok
}

// PickNextTask implements core.Scheduler: FIFO per core.
func (s *Sched) PickNextTask(cpu int, curr *core.Schedulable, currRuntime time.Duration) *core.Schedulable {
	s.mu.Lock()
	defer s.mu.Unlock()
	q := s.st.queues[cpu]
	if len(q) == 0 {
		return nil
	}
	t := q[0]
	s.st.queues[cpu] = q[1:]
	t.queued = false
	tok := t.sched
	t.sched = nil
	s.st.running[cpu] = t.pid
	s.st.idleTicks[cpu] = 0
	return tok
}

// PntErr implements core.Scheduler.
func (s *Sched) PntErr(cpu int, pid int, err core.PickError, sched *core.Schedulable) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.st.tasks[pid]
	if t == nil || sched == nil {
		return
	}
	if !t.queued {
		s.push(t, sched.CPU(), sched)
	}
}

// TaskTick implements core.Scheduler: round-robin when peers wait.
func (s *Sched) TaskTick(cpu int, queued bool, currPID int, currRuntime time.Duration) {
	s.mu.Lock()
	resched := len(s.st.queues[cpu]) > 0
	s.mu.Unlock()
	if resched {
		s.env.Resched(cpu)
	}
}

// SelectTaskRQ implements core.Scheduler: always into the nest.
func (s *Sched) SelectTaskRQ(pid, prevCPU int, wakeup bool) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c := s.place(); c >= 0 {
		return c
	}
	return prevCPU
}

// MigrateTaskRQ implements core.Scheduler.
func (s *Sched) MigrateTaskRQ(pid, newCPU int, sched *core.Schedulable) *core.Schedulable {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.st.tasks[pid]
	if t == nil {
		return nil
	}
	old := t.sched
	if t.queued {
		s.remove(t)
	}
	s.push(t, newCPU, sched)
	return old
}

// ReregisterPrepare implements core.Scheduler.
func (s *Sched) ReregisterPrepare() *core.TransferOut { return &core.TransferOut{State: s.st} }

// ReregisterInit implements core.Scheduler.
func (s *Sched) ReregisterInit(in *core.TransferIn) {
	if in == nil || in.State == nil {
		return
	}
	if st, ok := in.State.(*state); ok {
		s.st = st
	}
}
