package rbtree

import (
	"sort"
	"testing"
	"testing/quick"

	"enoki/internal/ktime"
)

func intTree() *Tree[int, string] {
	return New[int, string](func(a, b int) bool { return a < b })
}

func TestEmptyTree(t *testing.T) {
	tr := intTree()
	if tr.Len() != 0 {
		t.Fatal("new tree not empty")
	}
	if tr.Min() != nil {
		t.Fatal("Min on empty tree not nil")
	}
	if tr.PopMin() != nil {
		t.Fatal("PopMin on empty tree not nil")
	}
	tr.CheckInvariants()
}

func TestInsertAndMin(t *testing.T) {
	tr := intTree()
	for _, k := range []int{5, 3, 8, 1, 9, 7} {
		tr.Insert(k, "")
		tr.CheckInvariants()
	}
	if tr.Len() != 6 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if tr.Min().Key() != 1 {
		t.Fatalf("Min = %d", tr.Min().Key())
	}
}

func TestAscendSorted(t *testing.T) {
	tr := intTree()
	keys := []int{42, 17, 99, 3, 56, 23, 88, 11, 64, 7}
	for _, k := range keys {
		tr.Insert(k, "")
	}
	var got []int
	tr.Ascend(func(n *Node[int, string]) bool {
		got = append(got, n.Key())
		return true
	})
	want := append([]int(nil), keys...)
	sort.Ints(want)
	if len(got) != len(want) {
		t.Fatalf("got %d keys", len(got))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("order mismatch at %d: %v vs %v", i, got, want)
		}
	}
}

func TestAscendEarlyStop(t *testing.T) {
	tr := intTree()
	for i := 0; i < 10; i++ {
		tr.Insert(i, "")
	}
	n := 0
	tr.Ascend(func(*Node[int, string]) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestDeleteByHandle(t *testing.T) {
	tr := intTree()
	nodes := make(map[int]*Node[int, string])
	for _, k := range []int{5, 3, 8, 1, 9, 7, 2, 6, 4} {
		nodes[k] = tr.Insert(k, "")
	}
	for _, k := range []int{5, 1, 9, 3} {
		tr.Delete(nodes[k])
		tr.CheckInvariants()
		delete(nodes, k)
	}
	if tr.Len() != 5 {
		t.Fatalf("Len after deletes = %d", tr.Len())
	}
	if tr.Min().Key() != 2 {
		t.Fatalf("Min = %d", tr.Min().Key())
	}
}

func TestDoubleDeletePanics(t *testing.T) {
	tr := intTree()
	n := tr.Insert(1, "")
	tr.Delete(n)
	defer func() {
		if recover() == nil {
			t.Fatal("double delete did not panic")
		}
	}()
	tr.Delete(n)
}

func TestDeleteForeignNodePanics(t *testing.T) {
	a, b := intTree(), intTree()
	n := a.Insert(1, "")
	defer func() {
		if recover() == nil {
			t.Fatal("cross-tree delete did not panic")
		}
	}()
	b.Delete(n)
}

func TestEqualKeysStableOrder(t *testing.T) {
	// CFS relies on equal-vruntime entities dequeueing in insertion order.
	tr := intTree()
	tr.Insert(5, "first")
	tr.Insert(5, "second")
	tr.Insert(5, "third")
	var got []string
	for {
		n := tr.PopMin()
		if n == nil {
			break
		}
		got = append(got, n.Value())
	}
	if len(got) != 3 || got[0] != "first" || got[1] != "second" || got[2] != "third" {
		t.Fatalf("equal-key order: %v", got)
	}
}

func TestPopMinDrainsSorted(t *testing.T) {
	tr := intTree()
	r := ktime.NewRand(1)
	for i := 0; i < 1000; i++ {
		tr.Insert(r.Intn(100), "")
	}
	prev := -1
	for {
		n := tr.PopMin()
		if n == nil {
			break
		}
		if n.Key() < prev {
			t.Fatalf("PopMin out of order: %d after %d", n.Key(), prev)
		}
		prev = n.Key()
	}
	if tr.Len() != 0 {
		t.Fatal("tree not empty after drain")
	}
	tr.CheckInvariants()
}

func TestSetValue(t *testing.T) {
	tr := intTree()
	n := tr.Insert(1, "a")
	n.SetValue("b")
	if tr.Min().Value() != "b" {
		t.Fatal("SetValue not visible")
	}
}

func TestNextIteration(t *testing.T) {
	tr := intTree()
	for i := 0; i < 20; i += 2 {
		tr.Insert(i, "")
	}
	n := tr.Min()
	for want := 0; want < 20; want += 2 {
		if n == nil || n.Key() != want {
			t.Fatalf("Next iteration broke at %d", want)
		}
		n = tr.Next(n)
	}
	if n != nil {
		t.Fatal("Next past maximum not nil")
	}
}

// Property test: any interleaving of inserts and handle-deletes keeps the
// red-black invariants, the size, and the min in agreement with a reference
// model.
func TestQuickRandomOps(t *testing.T) {
	f := func(seed uint64) bool {
		r := ktime.NewRand(seed)
		tr := intTree()
		var live []*Node[int, string]
		model := map[*Node[int, string]]int{}
		for op := 0; op < 400; op++ {
			if len(live) == 0 || r.Bernoulli(0.6) {
				k := r.Intn(50)
				n := tr.Insert(k, "")
				live = append(live, n)
				model[n] = k
			} else {
				i := r.Intn(len(live))
				n := live[i]
				tr.Delete(n)
				delete(model, n)
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			}
			tr.CheckInvariants()
			if tr.Len() != len(model) {
				return false
			}
			if len(model) > 0 {
				min := 1 << 30
				for _, k := range model {
					if k < min {
						min = k
					}
				}
				if tr.Min().Key() != min {
					return false
				}
			} else if tr.Min() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInsertPopMin(b *testing.B) {
	tr := New[int64, int](func(a, c int64) bool { return a < c })
	r := ktime.NewRand(3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Insert(int64(r.Uint64()%1e9), i)
		if tr.Len() > 64 {
			tr.PopMin()
		}
	}
}
